package experiments

import (
	"fmt"

	"stormtune/internal/stats"
	"stormtune/internal/topo"
)

// Fig6 renders the LOESS-smoothed optimization traces of the bayesian
// optimizer (Figure 6): throughput of each measured step, smoothed with
// span 0.75, sampled at a few step positions per condition and size.
func Fig6(g *GridData) *Report {
	evalSteps := []int{5, 10, 20, 40, 60, 90, 120, 150, 180}
	cols := []string{"condition", "size"}
	for _, s := range evalSteps {
		cols = append(cols, fmt.Sprintf("s%d", s))
	}
	r := &Report{
		ID:      "fig6",
		Title:   "LOESS (span 0.75) of bayesian-optimizer throughput vs step",
		Columns: cols,
	}
	strat := "bo"
	if g.Scale.IncludeBO180 {
		strat = "bo180"
	}
	for _, cond := range topo.Conditions() {
		for _, size := range g.Scale.Sizes {
			o, ok := g.Get(cond, size, strat)
			if !ok {
				continue
			}
			// Pool the raw (step, throughput) points of all passes, as
			// the paper's trendlines do.
			var xs, ys []float64
			for _, pass := range o.Passes {
				for _, rec := range pass.Records {
					if rec.Result.Failed {
						continue
					}
					xs = append(xs, float64(rec.Step))
					ys = append(ys, rec.Result.Throughput)
				}
			}
			row := []string{cond.Label(), size}
			if len(xs) < 3 {
				for range evalSteps {
					row = append(row, "-")
				}
				r.AddRow(row...)
				continue
			}
			maxStep := stats.Max(xs)
			ev := make([]float64, 0, len(evalSteps))
			for _, s := range evalSteps {
				ev = append(ev, float64(s))
			}
			sm := stats.Loess(xs, ys, 0.75, ev)
			for i, s := range evalSteps {
				if float64(s) > maxStep {
					row = append(row, "-")
					continue
				}
				row = append(row, fmt.Sprintf("%.0f", sm[i]))
			}
			r.AddRow(row...)
		}
	}
	r.AddNote("paper shape: small plateaus within ~50 steps, medium within ~100; large (100+ parameters) keeps improving past step 100, especially under time imbalance")
	return r
}
