package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Runner produces one or more reports for an experiment id.
type Runner func(sc Scale) []*Report

// sharedGrid memoizes the synthetic grid per scale signature so that
// fig4/fig5/fig6/fig7 reuse one run, as the paper derives all four
// figures from the same experiment series.
var sharedGrid struct {
	mu    sync.Mutex
	key   string
	value *GridData
}

// GetGrid returns the (possibly cached) synthetic grid for the scale.
func GetGrid(sc Scale) *GridData {
	key := fmt.Sprintf("%+v", sc)
	sharedGrid.mu.Lock()
	defer sharedGrid.mu.Unlock()
	if sharedGrid.key == key && sharedGrid.value != nil {
		return sharedGrid.value
	}
	g := RunSyntheticGrid(sc)
	sharedGrid.key = key
	sharedGrid.value = g
	return g
}

// sharedSundog memoizes the Sundog series per scale signature.
var sharedSundog struct {
	mu    sync.Mutex
	key   string
	value *SundogData
}

// GetSundog returns the (possibly cached) Sundog series for the scale.
func GetSundog(sc Scale) *SundogData {
	key := fmt.Sprintf("%+v", sc)
	sharedSundog.mu.Lock()
	defer sharedSundog.mu.Unlock()
	if sharedSundog.key == key && sharedSundog.value != nil {
		return sharedSundog.value
	}
	d := RunSundog(sc)
	sharedSundog.key = key
	sharedSundog.value = d
	return d
}

// sharedDrift memoizes the drift family per scale signature.
var sharedDrift struct {
	mu    sync.Mutex
	key   string
	value *DriftData
}

// GetDrift returns the (possibly cached) drift-family runs for the
// scale.
func GetDrift(sc Scale) *DriftData {
	key := fmt.Sprintf("%+v", sc)
	sharedDrift.mu.Lock()
	defer sharedDrift.mu.Unlock()
	if sharedDrift.key == key && sharedDrift.value != nil {
		return sharedDrift.value
	}
	d := RunDrift(sc)
	sharedDrift.key = key
	sharedDrift.value = d
	return d
}

// Registry maps experiment ids to runners.
var Registry = map[string]Runner{
	"table2":   func(Scale) []*Report { return []*Report{Table2()} },
	"table3":   func(Scale) []*Report { return []*Report{Table3()} },
	"fig3":     func(sc Scale) []*Report { return []*Report{Fig3(sc)} },
	"fig4":     func(sc Scale) []*Report { return []*Report{Fig4(GetGrid(sc))} },
	"fig5":     func(sc Scale) []*Report { return []*Report{Fig5(GetGrid(sc))} },
	"fig6":     func(sc Scale) []*Report { return []*Report{Fig6(GetGrid(sc))} },
	"fig7":     func(sc Scale) []*Report { return []*Report{Fig7(GetGrid(sc))} },
	"fig8a":    func(sc Scale) []*Report { return []*Report{Fig8a(GetSundog(sc))} },
	"fig8b":    func(sc Scale) []*Report { return []*Report{Fig8b(GetSundog(sc))} },
	"ablation": func(sc Scale) []*Report { return []*Report{Ablation(sc)} },
	"drift":    func(sc Scale) []*Report { return []*Report{Drift(GetDrift(sc))} },
	"batch":    func(sc Scale) []*Report { return []*Report{BatchScaling(sc)} },
	"async":    func(sc Scale) []*Report { return []*Report{AsyncScaling(sc)} },
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment id and renders its reports to w.
func Run(id string, sc Scale, w io.Writer) error {
	r, ok := Registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	for _, rep := range r(sc) {
		rep.Render(w)
		fmt.Fprintln(w)
	}
	return nil
}
