package experiments

import (
	"fmt"

	"stormtune/internal/cluster"
	"stormtune/internal/core"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

// Cell identifies one bar of Figure 4: condition × size × strategy.
type Cell struct {
	Cond     topo.Condition
	Size     string
	Strategy string
}

// Key renders a stable map key.
func (c Cell) Key() string {
	return fmt.Sprintf("%s|%s|%s", c.Cond.Label(), c.Size, c.Strategy)
}

// GridData holds the full synthetic-grid run; Figures 4-7 are views of
// it (the paper likewise derives them from one experiment series).
type GridData struct {
	Scale Scale
	Cells map[string]core.Outcome
	// Order preserves insertion order for deterministic reports.
	Order []Cell
}

// Strategies returns the strategy list the grid ran, in figure order.
func (g *GridData) Strategies() []string {
	out := []string{"pla", "bo", "ipla", "ibo"}
	if g.Scale.IncludeBO180 {
		out = append(out, "bo180")
	}
	return out
}

// Get returns the outcome for a cell.
func (g *GridData) Get(cond topo.Condition, size, strategy string) (core.Outcome, bool) {
	o, ok := g.Cells[Cell{cond, size, strategy}.Key()]
	return o, ok
}

// RunSyntheticGrid executes the §V-A experiment series: for every
// condition and topology size, tune with each strategy under the
// paper's protocol on the 80-machine cluster.
func RunSyntheticGrid(sc Scale) *GridData {
	spec := cluster.Paper()
	grid := &GridData{Scale: sc, Cells: map[string]core.Outcome{}}
	for _, cond := range topo.Conditions() {
		for _, size := range sc.Sizes {
			t := topo.BuildSynthetic(size, cond, sc.Seed+3)
			template := storm.DefaultSyntheticConfig(t, 1)
			ev := storm.NewFluidSim(t, spec, storm.SinkTuples, sc.Seed+42)
			for _, strat := range grid.Strategies() {
				steps := sc.Steps
				stopZeros := 0
				base := strat
				switch strat {
				case "pla", "ipla":
					stopZeros = 3
				case "bo180":
					steps = sc.Steps180
					base = "bo180" // MakeFactory treats bo180 as bo
				}
				factory, err := core.MakeFactory(base, t, spec, template, sc.Seed+11, sc.boOptions())
				if err != nil {
					panic(err) // strategies are statically known
				}
				out := core.RunProtocol(core.AsBackend(ev), factory, sc.protocol(steps, stopZeros))
				out.Strategy = strat
				cell := Cell{cond, size, strat}
				grid.Cells[cell.Key()] = out
				grid.Order = append(grid.Order, cell)
			}
		}
	}
	return grid
}

// Fig4 renders the throughput comparison (Figure 4): average of the
// best-configuration re-runs with min/max error bars.
func Fig4(g *GridData) *Report {
	r := &Report{
		ID:      "fig4",
		Title:   "Throughput of best found configuration (tuples/s at sinks), avg [min..max] of re-runs",
		Columns: append([]string{"condition", "size"}, g.Strategies()...),
	}
	for _, cond := range topo.Conditions() {
		for _, size := range g.Scale.Sizes {
			row := []string{cond.Label(), size}
			for _, strat := range g.Strategies() {
				o, ok := g.Get(cond, size, strat)
				if !ok || o.Summary.N == 0 {
					row = append(row, "-")
					continue
				}
				row = append(row, fmt.Sprintf("%.0f [%.0f..%.0f]", o.Summary.Mean, o.Summary.Min, o.Summary.Max))
			}
			r.AddRow(row...)
		}
	}
	r.AddNote("paper shape: ipla dominates homogeneous medium/large; bo/ibo recover value under imbalance and contention; all tie on small and under TiIm+contention")
	return r
}

// Fig5 renders convergence speed (Figure 5): the step at which the best
// configuration was first measured, min/avg/max over passes.
func Fig5(g *GridData) *Report {
	r := &Report{
		ID:      "fig5",
		Title:   "Steps to reach best configuration, min/avg/max over optimization passes",
		Columns: append([]string{"condition", "size"}, g.Strategies()...),
	}
	for _, cond := range topo.Conditions() {
		for _, size := range g.Scale.Sizes {
			row := []string{cond.Label(), size}
			for _, strat := range g.Strategies() {
				o, ok := g.Get(cond, size, strat)
				if !ok || len(o.StepsToBest) == 0 {
					row = append(row, "-")
					continue
				}
				mn, mx, sum := o.StepsToBest[0], o.StepsToBest[0], 0
				for _, s := range o.StepsToBest {
					if s < mn {
						mn = s
					}
					if s > mx {
						mx = s
					}
					sum += s
				}
				row = append(row, fmt.Sprintf("%d/%.0f/%d", mn, float64(sum)/float64(len(o.StepsToBest)), mx))
			}
			r.AddRow(row...)
		}
	}
	r.AddNote("paper shape: linear strategies converge in far fewer steps than the bayesian ones; topology information shortens bo's search")
	return r
}

// Fig7 renders scalability (Figure 7): mean seconds per optimization
// step.
func Fig7(g *GridData) *Report {
	r := &Report{
		ID:      "fig7",
		Title:   "Mean optimizer decision time per step (seconds)",
		Columns: append([]string{"condition", "size"}, g.Strategies()...),
	}
	for _, cond := range topo.Conditions() {
		for _, size := range g.Scale.Sizes {
			row := []string{cond.Label(), size}
			for _, strat := range g.Strategies() {
				o, ok := g.Get(cond, size, strat)
				if !ok || len(o.MeanDecisionSec) == 0 {
					row = append(row, "-")
					continue
				}
				sum := 0.0
				for _, s := range o.MeanDecisionSec {
					sum += s
				}
				row = append(row, fmt.Sprintf("%.4f", sum/float64(len(o.MeanDecisionSec))))
			}
			r.AddRow(row...)
		}
	}
	r.AddNote("paper shape: pla/ipla ≈ 0; bayesian step time grows sublinearly with the number of parameters (topology size)")
	return r
}
