package experiments

import (
	"context"
	"fmt"
	"time"

	"stormtune/internal/cluster"
	"stormtune/internal/core"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

// AsyncScaling measures the dispatch modes of the session API under
// heavy-tailed trial durations: the same evaluation budget is spent
// sequentially (q=1), in constant-liar barrier batches (q=4, each round
// gated on its slowest trial), and with free-slot refill (q=4, a
// replacement trial dispatched the moment any slot frees). The
// evaluator sleeps a deterministic Pareto-distributed duration per
// trial — the straggler pattern of real shared clusters — so the report
// shows how much wall-clock the barrier burns on stragglers and that
// async dispatch recovers it without giving up final throughput.
func AsyncScaling(sc Scale) *Report {
	spec := cluster.Small()
	t := topo.BuildSynthetic("small", topo.Condition{}, sc.Seed)
	template := storm.DefaultSyntheticConfig(t, 1)

	r := &Report{
		ID:      "async",
		Title:   "dispatch modes under heavy-tailed trial durations: sequential vs barrier batch vs free-slot refill",
		Columns: []string{"mode", "q", "wall-clock", "ideal-compute", "best-throughput", "regret"},
	}

	base := 5 * time.Millisecond
	type row struct {
		mode  string
		q     int
		wall  time.Duration
		sleep time.Duration
		best  float64
	}
	modes := []struct {
		name  string
		q     int
		async bool
	}{
		{"sequential", 1, false},
		{"batch", 4, false},
		{"async", 4, true},
	}
	var rows []row
	bestOverall := 0.0
	for _, m := range modes {
		inner := storm.NewFluidSim(t, spec, storm.SinkTuples, sc.Seed)
		ev := storm.Jittered(inner, base, sc.Seed+5)
		strat := core.NewBO(t, spec, template, core.BOOptions{
			Set:  core.Hints,
			Seed: sc.Seed + 17,
			Opt:  sc.boOptions().Opt,
		})
		sess := core.NewSession(strat, core.AsBackend(ev), core.SessionOptions{MaxSteps: sc.Steps})
		start := time.Now()
		var tr core.TuneResult
		if m.async {
			tr, _ = sess.RunAsync(context.Background(), m.q)
		} else {
			tr, _ = sess.RunBatch(context.Background(), m.q)
		}
		wall := time.Since(start)
		var sleep time.Duration
		for _, rec := range tr.Records {
			sleep += ev.Duration(rec.Config, rec.Step)
		}
		b := 0.0
		if best, ok := tr.Best(); ok {
			b = best.Result.Throughput
		}
		if b > bestOverall {
			bestOverall = b
		}
		rows = append(rows, row{mode: m.name, q: m.q, wall: wall, sleep: sleep, best: b})
	}
	for _, w := range rows {
		regret := 0.0
		if bestOverall > 0 {
			regret = 100 * (bestOverall - w.best) / bestOverall
		}
		// ideal-compute is the summed trial durations divided by q — the
		// wall-clock a perfectly packed dispatcher would need.
		ideal := time.Duration(int64(w.sleep) / int64(w.q))
		r.AddRow(
			w.mode,
			fmt.Sprintf("%d", w.q),
			fmt.Sprintf("%.3fs", w.wall.Seconds()),
			fmt.Sprintf("%.3fs", ideal.Seconds()),
			fmt.Sprintf("%.0f", w.best),
			fmt.Sprintf("%.1f%%", regret),
		)
	}
	r.AddNote("same %d-trial budget per row; durations are Pareto(α=1.3) with base %v, deterministic per (config, run)", sc.Steps, base)
	r.AddNote("barrier rounds wait for their slowest trial; free-slot refill re-dispatches the moment a slot frees")
	r.AddNote("this cluster could host up to %d concurrent trials of the default configuration",
		spec.MaxConcurrentTrials(template.TotalTasks()))
	return r
}
