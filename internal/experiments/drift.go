package experiments

import (
	"context"
	"fmt"

	"stormtune/internal/cluster"
	"stormtune/internal/core"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
	"stormtune/internal/watch"
)

// The drift experiment family measures what the paper's offline tuner
// cannot: performance over *time* under a drifting workload, and how
// much of the drift-induced loss an online retuning policy recovers.
// Three policies run the identical scenario:
//
//   - never:        monitor disabled — tune once, hold forever (the
//     paper's protocol extended in time).
//   - threshold:    retune on trigger with a full-cube search box —
//     a warm-started restart, maximally aggressive.
//   - conservative: retune on trigger inside a trust region around the
//     incumbent (ContTune-style Big/Small widening), bounding how far
//     any retune trial may stray.
//
// Loss is offered-but-undelivered throughput integrated over simulated
// time (tuples), so a retune's transient cost and its steady-state
// payoff land in the same unit; recovery is the fraction of the
// never-policy's loss a policy eliminates.

// DriftScenario is one time-varying workload shape.
type DriftScenario struct {
	Name     string
	Profile  storm.DriftProfile
	BaseLoad float64
}

// DriftPolicy is one online-retuning stance.
type DriftPolicy struct {
	Name    string
	Monitor watch.MonitorOptions
	Retune  core.RetuneOptions
}

// DriftOutcome summarizes one (scenario, policy) watch.
type DriftOutcome struct {
	Scenario string
	Policy   string
	// Episodes is the number of retune episodes the watch ran.
	Episodes int
	// Loss is offered-but-undelivered tuples integrated from the end of
	// the initial tune to the horizon (hold samples weighted by the
	// hold interval, retune trials by the trial cost).
	Loss float64
	// Recovery is 1 − Loss/Loss(never) for the same scenario.
	Recovery float64
	// WorstTransient is the minimum over retune trials of
	// delivered/delivered-at-trigger — how deep the exploration dipped
	// below what the degraded incumbent was still delivering. 1 when no
	// retune ran.
	WorstTransient float64
	// FinalDelivered is the last monitoring sample's throughput.
	FinalDelivered float64
}

// DriftData is the raw family output keyed "scenario/policy".
type DriftData struct {
	Scenarios []DriftScenario
	Policies  []DriftPolicy
	Outcomes  map[string]DriftOutcome
}

// driftTopo is the family's fixed topology: the 4-node diamond whose
// capacity spans ~50..625 tuples/s across the configuration space —
// wide enough that a flash crowd outgrows a lazily chosen
// configuration while headroom for recovery exists.
func driftTopo() *topo.Topology {
	return topo.MustNew("drift",
		[]topo.Node{
			{Name: "s", Kind: topo.Spout, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
			{Name: "a", Kind: topo.Bolt, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
			{Name: "b", Kind: topo.Bolt, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
			{Name: "c", Kind: topo.Bolt, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
		},
		[]topo.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3}},
	)
}

func driftSpec() cluster.Spec {
	return cluster.Spec{Machines: 8, CoresPerMachine: 4, CoreMillisPerSec: 1000,
		NICBytesPerSec: 128e6, TaskSlotsPerMachine: 16, ThrashTasksPerCore: 4}
}

// DriftScenarios returns the family's workload grid: an abrupt large
// flash crowd and a slower, smaller ramp.
func DriftScenarios() []DriftScenario {
	return []DriftScenario{
		{Name: "flash-x2", Profile: storm.FlashCrowd{At: 2000, Magnitude: 2}, BaseLoad: 300},
		{Name: "ramp-x1.5", Profile: storm.FlashCrowd{At: 2000, Magnitude: 1.5, Ramp: 600}, BaseLoad: 300},
	}
}

// DriftPolicies returns the family's policy grid.
func DriftPolicies() []DriftPolicy {
	monitor := watch.MonitorOptions{Window: 6, Cooldown: 1200}
	return []DriftPolicy{
		{Name: "never", Monitor: watch.MonitorOptions{Disabled: true}},
		// A degenerate trust region spanning the whole unit cube: the
		// trigger machinery with none of the conservatism.
		{Name: "threshold", Monitor: monitor,
			Retune: core.RetuneOptions{Radius: 1, RadiusMin: 1, RadiusMax: 1}},
		{Name: "conservative", Monitor: monitor},
	}
}

// driftCollector reduces a watch's event stream to the family metrics.
// Events arrive in order from the watch's single run goroutine.
type driftCollector struct {
	holdInterval float64
	trialCost    float64

	inRetune       bool
	atTrigger      float64 // delivered throughput of the last pre-trigger sample
	lastDelivered  float64
	loss           float64
	worstTransient float64
	episodes       int
}

func (d *driftCollector) OnEvent(e core.Event) {
	switch ev := e.(type) {
	case core.HoldSampled:
		d.lastDelivered = ev.Result.Throughput
		d.loss += (ev.Result.OfferedLoad - ev.Result.Throughput) * d.holdInterval
	case core.RetuneTriggered:
		d.inRetune = true
		d.episodes++
		d.atTrigger = d.lastDelivered
	case core.RetuneCompleted:
		d.inRetune = false
	case core.TrialCompleted:
		if !d.inRetune {
			return // initial-tune trials are identical across policies
		}
		d.loss += (ev.Result.OfferedLoad - ev.Result.Throughput) * d.trialCost
		if d.atTrigger > 0 {
			if rel := ev.Result.Throughput / d.atTrigger; rel < d.worstTransient {
				d.worstTransient = rel
			}
		}
	}
}

// RunDrift executes the full scenario × policy grid.
func RunDrift(sc Scale) *DriftData {
	data := &DriftData{
		Scenarios: DriftScenarios(),
		Policies:  DriftPolicies(),
		Outcomes:  map[string]DriftOutcome{},
	}
	tp := driftTopo()
	spec := driftSpec()
	for _, scen := range data.Scenarios {
		for _, pol := range data.Policies {
			f := storm.NewFluidSim(tp, spec, storm.SinkTuples, sc.Seed)
			f.Noise = storm.NoNoise()
			ev := storm.Drifting(f, scen.Profile, scen.BaseLoad)
			col := &driftCollector{holdInterval: 60, trialCost: 60, worstTransient: 1}
			boOpts := sc.boOptions()
			boOpts.Seed = sc.Seed
			c := watch.New(tp, spec, storm.DefaultSyntheticConfig(tp, 1),
				core.AsBackend(ev), boOpts, watch.Options{
					Steps:        sc.Steps,
					RetuneSteps:  10,
					TrialCost:    60,
					HoldInterval: 60,
					Horizon:      6000,
					Monitor:      pol.Monitor,
					Retune:       pol.Retune,
					Observer:     col,
				})
			if err := c.Run(context.Background()); err != nil {
				// The simulated watch only errors on a broken setup; record
				// it loudly rather than panicking mid-report.
				data.Outcomes[scen.Name+"/"+pol.Name] = DriftOutcome{
					Scenario: scen.Name, Policy: pol.Name, Recovery: -1,
				}
				continue
			}
			data.Outcomes[scen.Name+"/"+pol.Name] = DriftOutcome{
				Scenario:       scen.Name,
				Policy:         pol.Name,
				Episodes:       c.Episodes(),
				Loss:           col.loss,
				WorstTransient: col.worstTransient,
				FinalDelivered: col.lastDelivered,
			}
		}
		// Recovery is relative to the never policy of the same scenario.
		never := data.Outcomes[scen.Name+"/never"]
		for _, pol := range data.Policies {
			key := scen.Name + "/" + pol.Name
			o := data.Outcomes[key]
			if never.Loss > 0 {
				o.Recovery = 1 - o.Loss/never.Loss
			}
			data.Outcomes[key] = o
		}
	}
	return data
}

// Drift renders the family as a report: regret over time collapsed to
// integrated loss, plus the retune-transient depth.
func Drift(d *DriftData) *Report {
	r := &Report{
		ID:    "drift",
		Title: "Online retuning under drifting load (loss = offered−delivered integrated over sim time)",
		Columns: []string{"scenario", "policy", "episodes", "loss (tuples)",
			"recovery", "worst transient", "final delivered"},
	}
	for _, scen := range d.Scenarios {
		for _, pol := range d.Policies {
			o := d.Outcomes[scen.Name+"/"+pol.Name]
			r.AddRow(scen.Name, pol.Name,
				fmt.Sprintf("%d", o.Episodes),
				fmt.Sprintf("%.0f", o.Loss),
				fmt.Sprintf("%.0f%%", 100*o.Recovery),
				fmt.Sprintf("%.2f", o.WorstTransient),
				fmt.Sprintf("%.1f", o.FinalDelivered))
		}
	}
	r.AddNote("recovery: fraction of the never-policy's loss a policy eliminates; acceptance floor for conservative is 50%% under flash-x2")
	r.AddNote("worst transient: deepest retune-trial throughput relative to the degraded incumbent at trigger time (1.00 = no dip)")
	return r
}
