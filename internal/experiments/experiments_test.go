package experiments

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"stormtune/internal/topo"
)

// tinyScale keeps unit tests fast while exercising every code path.
func tinyScale() Scale {
	return Scale{
		Steps: 6, Steps180: 8, Passes: 1, BestReruns: 3,
		IncludeBO180: false,
		Sizes:        []string{"small"},
		Seed:         1,
		BOCandidates: 60, BOHyperSamples: 1, BOLocalIters: 2,
	}
}

func TestReportRender(t *testing.T) {
	r := &Report{ID: "x", Title: "demo", Columns: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.AddNote("hello %d", 7)
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	r.CSV(&csv)
	if !strings.HasPrefix(csv.String(), "a,bb\n1,2\n") {
		t.Fatalf("csv wrong: %q", csv.String())
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	r := Table2()
	if len(r.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(r.Rows))
	}
	if r.Rows[0][0] != "small" || r.Rows[2][0] != "large" {
		t.Fatalf("row order wrong: %v", r.Rows)
	}
}

func TestTable3(t *testing.T) {
	r := Table3()
	if len(r.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(r.Rows))
	}
}

// skipSlow gates the experiment-protocol tests (each runs full
// optimization passes) so `go test -short ./...` finishes in seconds.
func skipSlow(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping slow experiment protocol in -short mode")
	}
}

func TestFig3NeverSaturatesNetwork(t *testing.T) {
	skipSlow(t)
	r := Fig3(tinyScale())
	if len(r.Rows) != 4 {
		t.Fatalf("want 4 topologies, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		util := row[2]
		if util == "-" {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(util, "%"), 64)
		if err != nil {
			t.Fatalf("bad utilization cell %q: %v", util, err)
		}
		if v > 60 {
			t.Fatalf("topology %s saturates the network: %s", row[0], util)
		}
	}
}

func TestGridRunsAndFiguresRender(t *testing.T) {
	skipSlow(t)
	sc := tinyScale()
	g := GetGrid(sc)
	if len(g.Cells) != len(topo.Conditions())*len(sc.Sizes)*len(g.Strategies()) {
		t.Fatalf("grid has %d cells", len(g.Cells))
	}
	for _, fig := range []func(*GridData) *Report{Fig4, Fig5, Fig6, Fig7} {
		r := fig(g)
		if len(r.Rows) == 0 {
			t.Fatalf("%s produced no rows", r.ID)
		}
		var buf bytes.Buffer
		r.Render(&buf)
		if buf.Len() == 0 {
			t.Fatal("empty render")
		}
	}
	// Cache hit returns the same pointer.
	if GetGrid(sc) != g {
		t.Fatal("grid cache miss for identical scale")
	}
}

func TestSundogSeriesAndFig8(t *testing.T) {
	skipSlow(t)
	sc := tinyScale()
	d := GetSundog(sc)
	for _, label := range []string{"pla.h", "bo.h", "bo.h-bs-bp", "bo.bs-bp-cc"} {
		if _, ok := d.Outcomes[label]; !ok {
			t.Fatalf("missing outcome %s", label)
		}
	}
	a := Fig8a(d)
	if len(a.Rows) < 4 {
		t.Fatalf("fig8a rows = %d", len(a.Rows))
	}
	b := Fig8b(d)
	if len(b.Rows) == 0 {
		t.Fatal("fig8b empty")
	}
}

func TestAsyncScalingShapes(t *testing.T) {
	skipSlow(t)
	r := AsyncScaling(tinyScale())
	if len(r.Rows) != 3 {
		t.Fatalf("want sequential/batch/async rows, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if len(row) != len(r.Columns) {
			t.Fatalf("row %v does not match columns %v", row, r.Columns)
		}
	}
	if r.Rows[0][0] != "sequential" || r.Rows[1][0] != "batch" || r.Rows[2][0] != "async" {
		t.Fatalf("unexpected mode order: %v", r.Rows)
	}
}

func TestRegistryRunAll(t *testing.T) {
	skipSlow(t)
	sc := tinyScale()
	for _, id := range IDs() {
		var buf bytes.Buffer
		if err := Run(id, sc, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
	if err := Run("nope", sc, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestAblationRuns(t *testing.T) {
	skipSlow(t)
	sc := tinyScale()
	sc.Steps = 4
	sc.BestReruns = 2
	r := Ablation(sc)
	if len(r.Rows) != 5 {
		t.Fatalf("ablation rows = %d, want 5 variants", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row[1] == "" || row[1] == "0 [0..0]" {
			t.Fatalf("variant %s found nothing: %v", row[0], row)
		}
	}
}

func TestBatchScalingReport(t *testing.T) {
	skipSlow(t)
	sc := tinyScale()
	r := BatchScaling(sc)
	if len(r.Rows) != 3 {
		t.Fatalf("batch report rows = %d, want 3 (q=1,2,4)", len(r.Rows))
	}
	if r.Rows[0][0] != "1" || r.Rows[1][0] != "2" || r.Rows[2][0] != "4" {
		t.Fatalf("batch sizes wrong: %v", r.Rows)
	}
	// Every batch size must find a working configuration, and the
	// batched runs must stay within 10% of the best result (the
	// acceptance bound for constant-liar parity).
	for _, row := range r.Rows {
		if row[3] == "0" {
			t.Fatalf("q=%s found nothing: %v", row[0], row)
		}
		var regret float64
		if _, err := fmt.Sscanf(row[4], "%f%%", &regret); err != nil {
			t.Fatalf("bad regret cell %q: %v", row[4], err)
		}
		if regret > 10 {
			t.Fatalf("q=%s regret %.1f%% exceeds 10%%", row[0], regret)
		}
	}
}

func TestScaleFromEnv(t *testing.T) {
	t.Setenv("STORMTUNE_FULL", "")
	if got := ScaleFromEnv(); got.Steps != QuickScale().Steps {
		t.Fatalf("default should be quick, got %+v", got)
	}
	t.Setenv("STORMTUNE_FULL", "1")
	if got := ScaleFromEnv(); got.Steps != FullScale().Steps {
		t.Fatalf("STORMTUNE_FULL=1 should be full, got %+v", got)
	}
}
