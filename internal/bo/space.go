// Package bo implements Bayesian optimization in the style of Spearmint
// (Snoek, Larochelle & Adams 2012), the toolkit the paper uses: a
// Gaussian-process surrogate over the unit hypercube, Expected
// Improvement acquisition marginalized over slice-sampled kernel
// hyperparameters, and a Suggest/Observe loop with JSON state
// serialization for pause and resume.
//
// # The incremental hot path
//
// The optimizer amortizes surrogate work across asks through a
// modelCache (cache.go). Hyperparameter slice sampling and
// y-standardization run only at refit epochs — a pure function of the
// observation count — and stay frozen in between; each ask then
// extends the cached Cholesky factors with the new observations
// (gp.Surrogate.Observe) and conditions constant-liar fantasies in and
// out by trailing extend/retract, instead of refitting the ensemble
// from scratch. Past Options.ApproxAfter observations the ensemble
// switches to a random-Fourier-feature surrogate whose per-ask cost is
// constant in n. Options.DenseRebuild selects the cold
// rebuild-every-ask reference path, which the cache is pinned against
// bit-for-bit in tests; Options.InitHypers warm-starts the first epoch
// from another session's HyperState.
package bo

import (
	"fmt"
	"math"
)

// DimKind distinguishes parameter types. Integers and enums are
// optimized via a continuous relaxation on [0,1] rounded at evaluation
// time, the standard Spearmint treatment.
type DimKind int

// Parameter kinds.
const (
	Float DimKind = iota
	Int
	Enum
)

// Dim describes a single configuration parameter.
type Dim struct {
	Name string  `json:"name"`
	Kind DimKind `json:"kind"`
	// Min/Max bound Float and Int dims (inclusive).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Values enumerate Enum dims.
	Values []string `json:"values,omitempty"`
	// Log selects log-scale mapping for Float/Int dims whose range spans
	// orders of magnitude (e.g. batch size 100..500000).
	Log bool `json:"log,omitempty"`
}

// Space is an ordered list of parameters defining the search domain.
type Space struct {
	Dims []Dim `json:"dims"`
}

// NewSpace validates and wraps dims.
func NewSpace(dims ...Dim) (*Space, error) {
	for i, d := range dims {
		switch d.Kind {
		case Float, Int:
			if !(d.Min < d.Max) {
				return nil, fmt.Errorf("bo: dim %d (%s): min %v must be < max %v", i, d.Name, d.Min, d.Max)
			}
			if d.Log && d.Min <= 0 {
				return nil, fmt.Errorf("bo: dim %d (%s): log scale requires min > 0", i, d.Name)
			}
			if d.Kind == Int && (d.Min != math.Trunc(d.Min) || d.Max != math.Trunc(d.Max)) {
				return nil, fmt.Errorf("bo: dim %d (%s): integer bounds must be whole numbers", i, d.Name)
			}
		case Enum:
			if len(d.Values) < 2 {
				return nil, fmt.Errorf("bo: dim %d (%s): enum needs ≥2 values", i, d.Name)
			}
		default:
			return nil, fmt.Errorf("bo: dim %d (%s): unknown kind %d", i, d.Name, d.Kind)
		}
	}
	return &Space{Dims: dims}, nil
}

// MustSpace is NewSpace that panics on error; for statically known spaces.
func MustSpace(dims ...Dim) *Space {
	s, err := NewSpace(dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// D returns the dimensionality of the unit-cube representation.
func (s *Space) D() int { return len(s.Dims) }

// Decode maps a unit-cube point u ∈ [0,1]^d to concrete parameter
// values: floats within [Min,Max], ints rounded, enums by index.
func (s *Space) Decode(u []float64) []float64 {
	if len(u) != len(s.Dims) {
		panic(fmt.Sprintf("bo: decode point of dim %d against space of dim %d", len(u), len(s.Dims)))
	}
	out := make([]float64, len(u))
	for i, d := range s.Dims {
		v := clamp01(u[i])
		switch d.Kind {
		case Float:
			out[i] = d.fromUnit(v)
		case Int:
			out[i] = math.Round(d.fromUnit(v))
			if out[i] < d.Min {
				out[i] = d.Min
			}
			if out[i] > d.Max {
				out[i] = d.Max
			}
		case Enum:
			idx := int(v * float64(len(d.Values)))
			if idx >= len(d.Values) {
				idx = len(d.Values) - 1
			}
			out[i] = float64(idx)
		}
	}
	return out
}

// Encode maps concrete parameter values back onto the unit cube,
// inverse of Decode up to rounding.
func (s *Space) Encode(vals []float64) []float64 {
	if len(vals) != len(s.Dims) {
		panic(fmt.Sprintf("bo: encode point of dim %d against space of dim %d", len(vals), len(s.Dims)))
	}
	u := make([]float64, len(vals))
	for i, d := range s.Dims {
		switch d.Kind {
		case Float, Int:
			u[i] = clamp01(d.toUnit(vals[i]))
		case Enum:
			n := float64(len(d.Values))
			u[i] = clamp01((vals[i] + 0.5) / n)
		}
	}
	return u
}

func (d Dim) fromUnit(v float64) float64 {
	if d.Log {
		lo, hi := math.Log(d.Min), math.Log(d.Max)
		return math.Exp(lo + v*(hi-lo))
	}
	return d.Min + v*(d.Max-d.Min)
}

func (d Dim) toUnit(x float64) float64 {
	if d.Log {
		lo, hi := math.Log(d.Min), math.Log(d.Max)
		return (math.Log(x) - lo) / (hi - lo)
	}
	return (x - d.Min) / (d.Max - d.Min)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// EnumValue returns the string label for an enum dim's decoded value.
func (s *Space) EnumValue(dim int, decoded float64) string {
	d := s.Dims[dim]
	if d.Kind != Enum {
		panic(fmt.Sprintf("bo: dim %d (%s) is not an enum", dim, d.Name))
	}
	return d.Values[int(decoded)]
}
