package bo

// TrustRegion confines an optimizer's proposals to an axis-aligned box
// around an incumbent in the unit cube — ContTune's conservative
// online search: a retune session starts from the running incumbent
// and only ever proposes configurations close to it, so a live system
// being retuned never regresses far. The region adapts as results
// arrive (the Big/Small phases): it widens only after GrowAfter
// consecutive improvements and shrinks on any regression, recentering
// on each new best.
//
// Mutation happens exclusively in Observe, so a session replaying its
// ask/tell log reproduces the center/radius trajectory — trust-region
// retunes snapshot and resume bit-identically like any other session.
// Not safe for concurrent use; the Optimizer it is attached to is not
// either.
type TrustRegion struct {
	// Center is the box center in unit-cube coordinates (the encoded
	// incumbent).
	Center []float64
	// Radius is the per-coordinate half-width. RadiusMin/RadiusMax
	// bound adaptation (defaults 0.02 and 0.5).
	Radius    float64
	RadiusMin float64
	RadiusMax float64
	// Grow multiplies Radius after GrowAfter consecutive improvements
	// (default 1.6); Shrink multiplies it on any non-improvement
	// (default 0.5).
	Grow   float64
	Shrink float64
	// GrowAfter is the improvement streak required to widen
	// (default 2).
	GrowAfter int

	bestY    float64
	haveBase bool
	streak   int
}

func (t *TrustRegion) radiusMin() float64 {
	if t.RadiusMin <= 0 {
		return 0.02
	}
	return t.RadiusMin
}

func (t *TrustRegion) radiusMax() float64 {
	if t.RadiusMax <= 0 {
		return 0.5
	}
	return t.RadiusMax
}

func (t *TrustRegion) grow() float64 {
	if t.Grow <= 1 {
		return 1.6
	}
	return t.Grow
}

func (t *TrustRegion) shrink() float64 {
	if t.Shrink <= 0 || t.Shrink >= 1 {
		return 0.5
	}
	return t.Shrink
}

func (t *TrustRegion) growAfter() int {
	if t.GrowAfter <= 0 {
		return 2
	}
	return t.GrowAfter
}

// Baseline sets the objective value new observations must beat to
// count as improvements — the incumbent's measured performance. Call
// it once before attaching the region; warm-start observations fed to
// the optimizer beforehand do not walk the region.
func (t *TrustRegion) Baseline(y float64) {
	t.bestY = y
	t.haveBase = true
	t.streak = 0
}

// Best returns the best objective the region has seen (its Baseline
// until an observation improves on it); ok is false before Baseline.
func (t *TrustRegion) Best() (y float64, ok bool) { return t.bestY, t.haveBase }

// Observe adapts the region to one completed evaluation: an
// improvement recenters the box on the improving point and extends the
// streak (widening by Grow once it reaches GrowAfter); anything else
// resets the streak and shrinks by Shrink.
func (t *TrustRegion) Observe(u []float64, y float64) {
	if !t.haveBase {
		t.Baseline(y)
		t.Center = append([]float64(nil), u...)
		return
	}
	if y > t.bestY {
		t.bestY = y
		t.Center = append([]float64(nil), u...)
		t.streak++
		if t.streak >= t.growAfter() {
			t.streak = 0
			t.Radius *= t.grow()
			if max := t.radiusMax(); t.Radius > max {
				t.Radius = max
			}
		}
		return
	}
	t.streak = 0
	t.Radius *= t.shrink()
	if min := t.radiusMin(); t.Radius < min {
		t.Radius = min
	}
}

// Clamp confines a unit-cube point into the region's box (intersected
// with the unit cube), returning a new slice. With no center set it
// only clamps to [0, 1].
func (t *TrustRegion) Clamp(u []float64) []float64 {
	out := make([]float64, len(u))
	for i, v := range u {
		if i < len(t.Center) {
			lo, hi := t.Center[i]-t.Radius, t.Center[i]+t.Radius
			if v < lo {
				v = lo
			}
			if v > hi {
				v = hi
			}
		}
		out[i] = clamp01(v)
	}
	return out
}

// Contains reports whether u lies inside the region's box (with a
// small tolerance for clamping arithmetic).
func (t *TrustRegion) Contains(u []float64) bool {
	const eps = 1e-9
	for i, v := range u {
		if i >= len(t.Center) {
			break
		}
		if v < t.Center[i]-t.Radius-eps || v > t.Center[i]+t.Radius+eps {
			return false
		}
	}
	return true
}
