package bo

import (
	"reflect"
	"testing"
)

func warmSpace(d int) *Space {
	dims := make([]Dim, d)
	for i := range dims {
		dims[i] = Dim{Name: string(rune('a' + i)), Kind: Float, Min: 0, Max: 1}
	}
	return &Space{Dims: dims}
}

func TestWarmStartsReplaceLHSBudget(t *testing.T) {
	warm := [][]float64{{0.25, 0.75}, {0.9, 0.1}}
	opt := NewOptimizer(warmSpace(2), Options{InitialDesign: 4, Seed: 7, WarmStarts: warm})
	u1, u2 := opt.Suggest(), opt.Suggest()
	if !reflect.DeepEqual(u1, warm[0]) || !reflect.DeepEqual(u2, warm[1]) {
		t.Fatalf("warm points must be issued first: got %v, %v", u1, u2)
	}
	u3, u4 := opt.Suggest(), opt.Suggest()
	for _, u := range [][]float64{u3, u4} {
		if reflect.DeepEqual(u, warm[0]) || reflect.DeepEqual(u, warm[1]) {
			t.Fatalf("LHS remainder should differ from warm points: %v", u)
		}
	}

	// Determinism: same seed and warm set replays the same sequence.
	opt2 := NewOptimizer(warmSpace(2), Options{InitialDesign: 4, Seed: 7, WarmStarts: warm})
	for i, want := range [][]float64{u1, u2, u3, u4} {
		if got := opt2.Suggest(); !reflect.DeepEqual(got, want) {
			t.Fatalf("suggestion %d not deterministic: %v vs %v", i, got, want)
		}
	}
}

func TestWarmStartsCappedAndCleaned(t *testing.T) {
	warm := [][]float64{
		{2, -1}, // out of cube: clamped
		{0.5},   // wrong dimension: dropped
		{0.1, 0.2},
		{0.3, 0.4},
		{0.5, 0.6},
	}
	opt := NewOptimizer(warmSpace(2), Options{InitialDesign: 3, Seed: 1, WarmStarts: warm})
	got := [][]float64{opt.Suggest(), opt.Suggest(), opt.Suggest()}
	want := [][]float64{{1, 0}, {0.1, 0.2}, {0.3, 0.4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("warm design = %v, want %v", got, want)
	}
}

func TestSetSharedSeedsReRanksUnissuedDesign(t *testing.T) {
	opt := NewOptimizer(warmSpace(2), Options{InitialDesign: 4, Seed: 3})
	first := opt.Suggest()
	opt.Observe(first, 1)
	seed := []float64{0.42, 0.58}
	opt.SetSharedSeeds([][]float64{first, seed, {0.5}})
	if got := opt.Suggest(); !reflect.DeepEqual(got, seed) {
		t.Fatalf("fresh shared seed should take the next slot, got %v", got)
	}
	if len(opt.Opts.SharedSeeds) != 2 {
		t.Fatalf("wrong-dimension seed should be dropped, kept %d", len(opt.Opts.SharedSeeds))
	}
}

func TestSetSharedSeedsBeforeDesignDrawn(t *testing.T) {
	opt := NewOptimizer(warmSpace(2), Options{InitialDesign: 3, Seed: 3, WarmStarts: [][]float64{{0.9, 0.9}}})
	seed := []float64{0.2, 0.8}
	opt.SetSharedSeeds([][]float64{seed})
	if got := opt.Suggest(); !reflect.DeepEqual(got, seed) {
		t.Fatalf("seed pushed before the draw should lead the design, got %v", got)
	}
	if got := opt.Suggest(); !reflect.DeepEqual(got, []float64{0.9, 0.9}) {
		t.Fatalf("original warm point should follow, got %v", got)
	}
}

// TestPriorMeanPullsSuggestions pins the transfer prior's effect: with
// identical local evidence, a prior that expects high objective near
// one corner pulls the first model-based suggestion toward it.
func TestPriorMeanPullsSuggestions(t *testing.T) {
	run := func(prior func([]float64) float64) []float64 {
		opt := NewOptimizer(warmSpace(2), Options{
			InitialDesign: 3, Seed: 11, HyperSamples: 1, Candidates: 200,
			LocalSearchIters: 4, PriorMean: prior,
		})
		for i := 0; i < 3; i++ {
			u := opt.Suggest()
			opt.Observe(u, 1) // flat local evidence
		}
		return opt.Suggest()
	}
	// Amplitude comparable to the (standardized) local evidence, as a
	// real archived prior is after core's similarity down-weighting.
	peak := []float64{0.95, 0.95}
	withPrior := run(func(u []float64) float64 {
		d := (u[0]-peak[0])*(u[0]-peak[0]) + (u[1]-peak[1])*(u[1]-peak[1])
		return 1 + 0.8*(1-2*d)
	})
	cold := run(nil)
	dist := func(u []float64) float64 {
		return (u[0]-peak[0])*(u[0]-peak[0]) + (u[1]-peak[1])*(u[1]-peak[1])
	}
	if dist(withPrior) >= dist(cold) {
		t.Fatalf("prior should pull the suggestion toward its peak: with=%v (d=%.3f) cold=%v (d=%.3f)",
			withPrior, dist(withPrior), cold, dist(cold))
	}
}
