package bo

import (
	"math"
	"testing"
)

func cacheTestSpace() *Space {
	return MustSpace(
		Dim{Name: "a", Kind: Float, Min: 0, Max: 1},
		Dim{Name: "b", Kind: Float, Min: 0, Max: 1},
		Dim{Name: "c", Kind: Float, Min: 0, Max: 1},
	)
}

func cacheObjective(u []float64) float64 {
	s := 0.0
	for i, v := range u {
		d := v - 0.3*float64(i+1)
		s -= d * d
	}
	return s
}

// TestCachedMatchesDenseRebuild is the pinned parity test for the
// incremental GP hot path: below the approximation threshold, an
// optimizer extending cached factors across asks proposes bit-identical
// points to one rebuilding dense GP state from scratch every ask, both
// through single suggests and constant-liar batches.
func TestCachedMatchesDenseRebuild(t *testing.T) {
	mk := func(dense bool) *Optimizer {
		return NewOptimizer(cacheTestSpace(), Options{
			Seed: 11, Candidates: 120, HyperSamples: 2, LocalSearchIters: 2,
			DenseRebuild: dense,
		})
	}
	inc, ref := mk(false), mk(true)
	for step := 0; step < 14; step++ {
		if step%4 == 3 {
			// Batch ask: fantasies extend/retract the cached factors.
			bi := inc.SuggestBatch(3)
			br := ref.SuggestBatch(3)
			if len(bi) != len(br) {
				t.Fatalf("step %d: batch sizes %d vs %d", step, len(bi), len(br))
			}
			for k := range bi {
				for j := range bi[k] {
					if bi[k][j] != br[k][j] {
						t.Fatalf("step %d batch %d dim %d: cached %v vs dense %v",
							step, k, j, bi[k], br[k])
					}
				}
				y := cacheObjective(bi[k])
				inc.Observe(bi[k], y)
				ref.Observe(br[k], y)
			}
			continue
		}
		ui, ur := inc.Suggest(), ref.Suggest()
		for j := range ui {
			if ui[j] != ur[j] {
				t.Fatalf("step %d dim %d: cached %v vs dense %v", step, j, ui, ur)
			}
		}
		y := cacheObjective(ui)
		inc.Observe(ui, y)
		ref.Observe(ur, y)
	}
	if inc.HyperState() == nil {
		t.Fatal("no hyper state after suggests")
	}
}

// TestInitHypersWarmStart checks a retune-style optimizer seeded with an
// incumbent's HyperState uses it verbatim for its first epoch (no cold
// slice sampling) and still proposes deterministically.
func TestInitHypersWarmStart(t *testing.T) {
	donor := NewOptimizer(cacheTestSpace(), Options{
		Seed: 3, Candidates: 100, HyperSamples: 2, LocalSearchIters: 2,
	})
	for i := 0; i < 8; i++ {
		u := donor.Suggest()
		donor.Observe(u, cacheObjective(u))
	}
	hs := donor.HyperState()
	if hs == nil || len(hs.Hypers) == 0 {
		t.Fatal("donor has no hyper state")
	}

	mk := func() *Optimizer {
		o := NewOptimizer(cacheTestSpace(), Options{
			Seed: 5, Candidates: 100, HyperSamples: 2, LocalSearchIters: 2,
			InitialDesign: 1, InitHypers: hs,
		})
		o.Observe([]float64{0.3, 0.6, 0.9}, cacheObjective([]float64{0.3, 0.6, 0.9}))
		return o
	}
	a, b := mk(), mk()
	ua, ub := a.Suggest(), b.Suggest()
	for j := range ua {
		if ua[j] != ub[j] {
			t.Fatalf("warm-started suggest not deterministic: %v vs %v", ua, ub)
		}
	}
	got := a.HyperState()
	if got == nil || len(got.Hypers) != len(hs.Hypers) {
		t.Fatal("warm-started optimizer dropped the injected hyper state")
	}
	for i := range got.Hypers {
		for j := range got.Hypers[i] {
			if got.Hypers[i][j] != hs.Hypers[i][j] {
				t.Fatalf("hyper sample %d differs from injected state", i)
			}
		}
	}

	// Mismatched hyper dimensions must be ignored, not crash.
	bad := NewOptimizer(cacheTestSpace(), Options{
		Seed: 5, Candidates: 80, HyperSamples: 1, InitialDesign: 1,
		InitHypers: &HyperState{Hypers: [][]float64{{0.1, 0.2}}},
	})
	bad.Observe([]float64{0.5, 0.5, 0.5}, 1)
	if u := bad.Suggest(); len(u) != 3 {
		t.Fatalf("suggest with invalid InitHypers returned %v", u)
	}
}

// TestApproxSwitchover drives an optimizer past a small ApproxAfter
// threshold and checks the approximate regime proposes valid,
// deterministic points and freezes further hyper refits.
func TestApproxSwitchover(t *testing.T) {
	mk := func() *Optimizer {
		return NewOptimizer(cacheTestSpace(), Options{
			Seed: 7, Candidates: 80, HyperSamples: 2, LocalSearchIters: 2,
			ApproxAfter: 20, RFFFeatures: 64, InitialDesign: 3,
		})
	}
	a, b := mk(), mk()
	for i := 0; i < 30; i++ {
		ua, ub := a.Suggest(), b.Suggest()
		for j := range ua {
			if ua[j] != ub[j] {
				t.Fatalf("step %d: approx path not deterministic: %v vs %v", i, ua, ub)
			}
			if ua[j] < 0 || ua[j] > 1 || math.IsNaN(ua[j]) {
				t.Fatalf("step %d: proposal out of cube: %v", i, ua)
			}
		}
		y := cacheObjective(ua)
		a.Observe(ua, y)
		b.Observe(ub, y)
	}
	if !a.cache.approx {
		t.Fatal("optimizer never entered the approximate regime")
	}
	fitN := a.cache.fitN
	for i := 0; i < 5; i++ {
		u := a.Suggest()
		a.Observe(u, cacheObjective(u))
	}
	if a.cache.fitN != fitN {
		t.Fatal("approximate regime refit hypers; they must stay frozen")
	}
}

// TestWindowedSessionsShareEpochHypers checks the MaxGPPoints sliding-
// window path still amortizes slice sampling across asks: the epoch
// hyper samples survive between asks even though models rebuild.
func TestWindowedSessionsShareEpochHypers(t *testing.T) {
	opt := NewOptimizer(cacheTestSpace(), Options{
		Seed: 9, Candidates: 80, HyperSamples: 2, LocalSearchIters: 2,
		MaxGPPoints: 10, InitialDesign: 3,
	})
	for i := 0; i < 25; i++ {
		u := opt.Suggest()
		if len(u) != 3 {
			t.Fatalf("step %d: bad proposal %v", i, u)
		}
		opt.Observe(u, cacheObjective(u))
	}
	c := &opt.cache
	if len(c.hypers) == 0 {
		t.Fatal("windowed session has no epoch hypers")
	}
	if c.fitN >= 25 && c.fitN < 16 {
		t.Fatalf("implausible fitN %d", c.fitN)
	}
	// Between scheduled refits, an extra ask must not consume hyper
	// samples again (fitN unchanged when n is unchanged).
	fitN := c.fitN
	_ = opt.Suggest()
	if opt.cache.fitN != fitN {
		t.Fatal("ask without new observations triggered a refit")
	}
}
