package bo

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"stormtune/internal/gp"
	"stormtune/internal/sample"
)

// Options tune the optimizer. Zero values select Spearmint-like
// defaults.
type Options struct {
	// InitialDesign is the number of Latin-hypercube seed points before
	// the GP takes over (default max(3, d)).
	InitialDesign int
	// Candidates is the size of the random candidate grid scored by the
	// acquisition each step (default 1000).
	Candidates int
	// HyperSamples is the number of slice-sampling hyperparameter draws
	// the acquisition is averaged over (default 6). 1 disables
	// marginalization and uses a MAP fit.
	HyperSamples int
	// LocalSearchIters refines the best candidate by coordinate
	// perturbation (default 20).
	LocalSearchIters int
	// Acq selects the acquisition function (default EI{}).
	Acq Acquisition
	// Kernel selects the surrogate kernel constructor (default
	// Matérn-5/2 with length 0.3). It is called with the space dimension.
	Kernel func(d int) gp.Kernel
	// NoiseVar is the initial observation-noise variance of the
	// surrogate (default 1e-3; the sampler adapts it).
	NoiseVar float64
	// Seed seeds the internal RNG (default 1).
	Seed int64
	// MaxGPPoints caps the number of observations used to condition the
	// GP; the most recent points are kept (0 = unlimited). Protects the
	// O(n³) fit on very long runs.
	MaxGPPoints int
	// SeedCandidates are unit-cube points always included in the
	// acquisition's candidate pool — the standard practice of seeding a
	// tuner with baseline configurations (they are only selected when
	// the model expects improvement there).
	SeedCandidates [][]float64
	// WarmStarts are unit-cube points evaluated before the Latin
	// hypercube, replacing that many points of the InitialDesign budget
	// (at most InitialDesign of them are used) — the transfer-learning
	// warm start: prior incumbents get measured first, and the LHS only
	// fills whatever budget they leave. Runtime-only like Trust: the
	// session-level snapshot reconstructs them on resume.
	WarmStarts [][]float64
	// PriorMean, when set, is an archived-runs prior on the surrogate
	// mean, in *standardized* objective units (the scale the GP fits
	// after y-standardization, which is also the scale per-donor
	// z-scored historical observations live on). It is installed as the
	// GP's prior mean function. Runtime-only, reconstructed on resume.
	PriorMean func(u []float64) float64
	// SharedSeeds are cross-session seed points pushed in mid-run (a
	// fleet sibling's NewBest); they join the acquisition candidate
	// pool like SeedCandidates. Install via SetSharedSeeds, which also
	// re-ranks the unissued initial design. Runtime-only.
	SharedSeeds [][]float64
	// Workers bounds the goroutines used to score the acquisition
	// candidate grid and to refit the per-hyper-sample GPs (default
	// GOMAXPROCS; 1 forces fully sequential operation). Results are
	// identical for any worker count.
	Workers int
	// Liar selects the fantasy objective used by SuggestBatch's
	// constant-liar strategy (default LiarMin, the pessimistic lie).
	Liar LiarStrategy
	// Trust, when set, confines every suggestion to a trust region
	// around the current incumbent — conservative (retune) mode. The
	// first suggestion with no data is the region's center itself, and
	// Observe adapts the region (recenter/widen/shrink). Runtime-only,
	// like the other non-scalar options: bo.State does not carry it,
	// the session-level snapshot reconstructs it.
	Trust *TrustRegion
	// ApproxAfter is the observation count past which the surrogate
	// switches from exact GPs to the random-Fourier-feature
	// approximation with frozen hyperparameters (0 = default 1024,
	// negative disables). Only applies when MaxGPPoints is unset — a
	// sliding window already bounds the exact cost.
	ApproxAfter int
	// RFFFeatures is the number of random Fourier features used past
	// ApproxAfter (default 256).
	RFFFeatures int
	// DenseRebuild forces the surrogate ensemble to be rebuilt from
	// scratch on every ask instead of extending cached factors. Same
	// epoch schedule, same RNG stream, bit-identical proposals — the
	// reference path the incremental cache is pinned against in tests.
	DenseRebuild bool
	// InitHypers seeds the first refit epoch with an existing
	// hyperparameter posterior (an incumbent session's HyperState), so a
	// retune session reuses the cache its parent already paid for
	// instead of slice-sampling from cold. Runtime-only.
	InitHypers *HyperState
}

func (o Options) withDefaults(d int) Options {
	if o.InitialDesign <= 0 {
		o.InitialDesign = 3
		if d > o.InitialDesign {
			o.InitialDesign = d
		}
		if o.InitialDesign > 10 {
			o.InitialDesign = 10
		}
	}
	if o.Candidates <= 0 {
		o.Candidates = 1000
	}
	if o.HyperSamples <= 0 {
		o.HyperSamples = 6
	}
	if o.LocalSearchIters < 0 {
		o.LocalSearchIters = 0
	} else if o.LocalSearchIters == 0 {
		o.LocalSearchIters = 20
	}
	if o.Acq == nil {
		o.Acq = EI{}
	}
	if o.Kernel == nil {
		o.Kernel = func(d int) gp.Kernel { return gp.NewMatern52(d, 0.3) }
	}
	if o.NoiseVar <= 0 {
		o.NoiseVar = 1e-3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Observation is one completed evaluation: a unit-cube point and the
// measured objective (higher is better).
type Observation struct {
	U []float64 `json:"u"`
	Y float64   `json:"y"`
}

// Optimizer is a sequential model-based optimizer over a Space. It is
// not safe for concurrent use.
type Optimizer struct {
	Space *Space
	Opts  Options

	obs     []Observation
	pending [][]float64 // suggested but not yet observed (conditioned on as constant-liar fantasies)
	rng     *rand.Rand

	// initQueue holds the full Latin-hypercube initial design, drawn
	// once on the first Suggest so its points are stratified against
	// each other; initNext indexes the next unissued point.
	initQueue [][]float64
	initNext  int

	// cache holds the surrogate ensemble reused across Suggest calls;
	// see modelCache.
	cache modelCache

	// LastStepDuration records how long the most recent Suggest call
	// took; the scalability experiment (Figure 7) reads it.
	LastStepDuration time.Duration
}

// NewOptimizer creates an optimizer over space.
func NewOptimizer(space *Space, opts Options) *Optimizer {
	o := opts.withDefaults(space.D())
	return &Optimizer{
		Space: space,
		Opts:  o,
		rng:   rand.New(rand.NewSource(o.Seed)),
	}
}

// N returns the number of completed observations.
func (opt *Optimizer) N() int { return len(opt.obs) }

// Best returns the incumbent (unit-cube point, objective). ok is false
// before any observation.
func (opt *Optimizer) Best() (u []float64, y float64, ok bool) {
	if len(opt.obs) == 0 {
		return nil, 0, false
	}
	bi := 0
	for i, o := range opt.obs {
		if o.Y > opt.obs[bi].Y {
			bi = i
		}
	}
	return opt.obs[bi].U, opt.obs[bi].Y, true
}

// Suggest proposes the next unit-cube point to evaluate. The first
// Opts.InitialDesign suggestions come from a Latin hypercube; afterwards
// the GP surrogate is fitted and the acquisition maximized over a
// candidate grid plus local search.
func (opt *Optimizer) Suggest() []float64 {
	//lint:wallclock telemetry: decision-time accounting, never a proposal input
	start := time.Now()
	//lint:wallclock telemetry: decision-time accounting, never a proposal input
	defer func() { opt.LastStepDuration = time.Since(start) }()
	return opt.suggestOne()
}

func (opt *Optimizer) suggestOne() []float64 {
	// Conservative mode: with no data at all, the first proposal is the
	// trust region's center — the incumbent re-measured under current
	// conditions before the search moves anywhere.
	if t := opt.Opts.Trust; t != nil && len(opt.obs)+len(opt.pending) == 0 && len(t.Center) == opt.Space.D() {
		u := t.Clamp(t.Center)
		opt.pending = append(opt.pending, u)
		return u
	}
	if len(opt.obs)+len(opt.pending) < opt.Opts.InitialDesign && opt.initNext < opt.Opts.InitialDesign {
		// The whole design is drawn in one LHS so points are stratified
		// against each other; hand them out one per call. Warm-start
		// points take the front of the queue and shrink the LHS draw.
		if opt.initQueue == nil {
			opt.initQueue = opt.initialDesign()
		}
		u := opt.confine(opt.initQueue[opt.initNext])
		opt.initNext++
		opt.pending = append(opt.pending, u)
		return u
	}
	u := opt.suggestGP()
	opt.pending = append(opt.pending, u)
	return u
}

// initialDesign builds the initial-design queue: warm-start points
// first (clamped into the cube, wrong-dimension points dropped), then
// a Latin hypercube over the remaining InitialDesign budget.
func (opt *Optimizer) initialDesign() [][]float64 {
	d := opt.Space.D()
	var queue [][]float64
	for _, u := range opt.Opts.WarmStarts {
		if len(u) != d || len(queue) == opt.Opts.InitialDesign {
			continue
		}
		c := make([]float64, d)
		for j, v := range u {
			c[j] = clamp01(v)
		}
		queue = append(queue, c)
	}
	return append(queue, sample.LatinHypercube(opt.rng, opt.Opts.InitialDesign-len(queue), d)...)
}

// SetSharedSeeds installs cross-session seed points mid-run: they join
// every future acquisition candidate pool, and any seed not already
// issued or observed re-ranks the warm-start pool by taking the next
// unissued slots of the initial design (or the front of WarmStarts if
// the design has not been drawn yet). Call between Suggest/Observe
// turns — the optimizer is not safe for concurrent use.
func (opt *Optimizer) SetSharedSeeds(us [][]float64) {
	d := opt.Space.D()
	clean := make([][]float64, 0, len(us))
	for _, u := range us {
		if len(u) != d {
			continue
		}
		c := make([]float64, d)
		for j, v := range u {
			c[j] = clamp01(v)
		}
		clean = append(clean, c)
	}
	opt.Opts.SharedSeeds = clean
	var fresh [][]float64
	for _, u := range clean {
		if !opt.seen(u) {
			fresh = append(fresh, u)
		}
	}
	if len(fresh) == 0 {
		return
	}
	if opt.initQueue == nil {
		opt.Opts.WarmStarts = append(append([][]float64(nil), fresh...), opt.Opts.WarmStarts...)
		return
	}
	for i := opt.initNext; i < len(opt.initQueue) && len(fresh) > 0; i++ {
		opt.initQueue[i] = fresh[0]
		fresh = fresh[1:]
	}
}

// seen reports whether u was already issued or observed.
func (opt *Optimizer) seen(u []float64) bool {
	for _, o := range opt.obs {
		if sameVec(o.U, u) {
			return true
		}
	}
	for _, p := range opt.pending {
		if sameVec(p, u) {
			return true
		}
	}
	return false
}

// confine clamps a proposal into the trust region, when one is set.
func (opt *Optimizer) confine(u []float64) []float64 {
	if opt.Opts.Trust == nil {
		return u
	}
	return opt.Opts.Trust.Clamp(u)
}

func (opt *Optimizer) suggestGP() []float64 {
	d := opt.Space.D()

	// Epoch maintenance: slice sampling (the only RNG consumer on the
	// model side) runs only when the refit schedule demands it; between
	// epochs hyperparameters and y-standardization stay frozen so the
	// cached factors remain valid.
	if opt.needRefit() {
		if err := opt.refitEpoch(); err != nil {
			// Degenerate surrogate: fall back to random exploration.
			return opt.confine(sample.Uniform(opt.rng, 1, d)[0])
		}
	}
	c := &opt.cache

	// Constant-liar conditioning: pending (suggested but unobserved)
	// points enter the conditioning set with a fantasy objective, so a
	// batch of suggestions spreads out instead of collapsing onto the
	// same acquisition maximum (Ginsbourger et al.'s CL heuristic). The
	// lie is standardized with the frozen epoch scale and fixed at
	// append time, making retraction an exact inverse.
	var fant []fantasyPoint
	if len(opt.pending) > 0 {
		_, ys := opt.trainingSet()
		if len(ys) > 0 {
			lie := (opt.Opts.Liar.value(ys) - c.my) / c.sy
			for _, p := range opt.pending {
				fant = append(fant, fantasyPoint{u: p, y: lie})
			}
		}
	}

	// Bring the ensemble to the canonical conditioning state. Windowed
	// sessions (MaxGPPoints) rebuild per ask — a sliding window has no
	// stable prefix to extend — but still reuse the epoch's frozen
	// hypers, so they skip the slice-sampling cost too. DenseRebuild is
	// the bit-identical reference path for the cache.
	windowed := opt.Opts.MaxGPPoints > 0 && len(opt.obs) > opt.Opts.MaxGPPoints
	var err error
	if windowed || opt.Opts.DenseRebuild {
		err = opt.rebuildModels(fant)
	} else {
		err = opt.syncModels(fant)
	}
	if err != nil {
		return opt.confine(sample.Uniform(opt.rng, 1, d)[0])
	}

	_, bestY, _ := opt.bestStandardized(c.my, c.sy)

	// Candidate grid: uniform + Halton + seeds + jittered copies of the
	// incumbent (Spearmint also includes the current best region).
	cands := sample.Uniform(opt.rng, opt.Opts.Candidates/2, d)
	cands = append(cands, sample.HaltonSeq(haltonOffset(len(opt.obs)), opt.Opts.Candidates/4, d)...)
	cands = append(cands, opt.Opts.SeedCandidates...)
	cands = append(cands, opt.Opts.SharedSeeds...)
	if bu, _, ok := opt.Best(); ok {
		for i := 0; i < opt.Opts.Candidates/4; i++ {
			c := make([]float64, d)
			for j := range c {
				c[j] = clamp01(bu[j] + 0.05*opt.rng.NormFloat64())
			}
			cands = append(cands, c)
		}
		// Axis sweeps: the incumbent with one coordinate moved to a
		// fixed level. These give the acquisition visibility of
		// single-parameter changes, which matter in high-dimensional
		// configuration spaces where random candidates are always far
		// from the data.
		for j := 0; j < d; j++ {
			for _, level := range []float64{0.05, 0.3, 0.7, 0.95} {
				c := append([]float64(nil), bu...)
				c[j] = level
				cands = append(cands, c)
			}
		}
	}

	// Conservative mode confines the whole candidate pool — every
	// source above (uniform, Halton, seeds, incumbent jitter, axis
	// sweeps) — into the trust box, so nothing outside it can even be
	// scored.
	if opt.Opts.Trust != nil {
		for i, c := range cands {
			cands[i] = opt.Opts.Trust.Clamp(c)
		}
	}

	if len(cands) == 0 {
		return opt.confine(sample.Uniform(opt.rng, 1, d)[0])
	}
	sc := scorer{models: c.models, acq: opt.Opts.Acq, bestY: bestY}
	bi, bestScore := sc.argmax(cands, opt.Opts.Workers)
	bestU := cands[bi]
	score := sc.worker()

	// Local coordinate search around the best candidate.
	cur := append([]float64(nil), bestU...)
	step := 0.08
	for it := 0; it < opt.Opts.LocalSearchIters; it++ {
		improved := false
		for j := 0; j < d; j++ {
			for _, dir := range []float64{1, -1} {
				trial := append([]float64(nil), cur...)
				trial[j] = clamp01(trial[j] + dir*step)
				trial = opt.confine(trial)
				if s := score(trial); s > bestScore {
					bestScore = s
					cur = trial
					improved = true
				}
			}
		}
		if !improved {
			step /= 2
			if step < 1e-3 {
				break
			}
		}
	}
	return cur
}

// trainingSet returns the conditioning data, truncated to MaxGPPoints
// most recent observations if configured.
func (opt *Optimizer) trainingSet() ([][]float64, []float64) {
	obs := opt.obs
	if m := opt.Opts.MaxGPPoints; m > 0 && len(obs) > m {
		obs = obs[len(obs)-m:]
	}
	xs := make([][]float64, len(obs))
	ys := make([]float64, len(obs))
	for i, o := range obs {
		xs[i] = o.U
		ys[i] = o.Y
	}
	return xs, ys
}

func (opt *Optimizer) bestStandardized(my, sy float64) ([]float64, float64, bool) {
	u, y, ok := opt.Best()
	if !ok {
		return nil, math.Inf(-1), false
	}
	return u, (y - my) / sy, true
}

// Observe records the objective value for a previously suggested (or
// externally chosen) unit-cube point.
func (opt *Optimizer) Observe(u []float64, y float64) {
	if len(u) != opt.Space.D() {
		panic(fmt.Sprintf("bo: observe point of dim %d against space of dim %d", len(u), opt.Space.D()))
	}
	opt.obs = append(opt.obs, Observation{U: append([]float64(nil), u...), Y: y})
	if opt.Opts.Trust != nil {
		opt.Opts.Trust.Observe(u, y)
	}
	// Drop the matching pending entry, if any.
	for i, p := range opt.pending {
		if sameVec(p, u) {
			opt.pending = append(opt.pending[:i], opt.pending[i+1:]...)
			break
		}
	}
}

// Observations returns a copy of the completed observations in order.
func (opt *Optimizer) Observations() []Observation {
	return append([]Observation(nil), opt.obs...)
}

func sameVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 1
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	for _, v := range xs {
		d := v - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	if std < 1e-9 {
		std = 1
	}
	return mean, std
}
