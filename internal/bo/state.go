package bo

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// State is the serializable snapshot of an optimization run. Spearmint's
// support for pausing and resuming "turned out to be important" in the
// paper's cluster setup (§III-C); this provides the same capability.
type State struct {
	Version      int           `json:"version"`
	Space        *Space        `json:"space"`
	Observations []Observation `json:"observations"`
	Seed         int64         `json:"seed"`
	// Pending holds suggested-but-unobserved points (in-flight trials at
	// snapshot time); Resume re-registers them as constant-liar
	// fantasies so a resumed batch keeps spreading out.
	Pending [][]float64 `json:"pending,omitempty"`
}

const stateVersion = 1

// Snapshot captures the optimizer's observations, pending suggestions
// and search space.
func (opt *Optimizer) Snapshot() *State {
	var pending [][]float64
	for _, p := range opt.pending {
		pending = append(pending, append([]float64(nil), p...))
	}
	return &State{
		Version:      stateVersion,
		Space:        opt.Space,
		Observations: opt.Observations(),
		Seed:         opt.Opts.Seed,
		Pending:      pending,
	}
}

// Save writes the snapshot as JSON.
func (s *State) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// SaveFile writes the snapshot to path, creating or truncating it.
func (s *State) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.Save(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadState reads a snapshot from r.
func LoadState(r io.Reader) (*State, error) {
	var s State
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("bo: decoding state: %w", err)
	}
	if s.Version != stateVersion {
		return nil, fmt.Errorf("bo: unsupported state version %d", s.Version)
	}
	if s.Space == nil || len(s.Space.Dims) == 0 {
		return nil, fmt.Errorf("bo: state has no search space")
	}
	for i, o := range s.Observations {
		if len(o.U) != len(s.Space.Dims) {
			return nil, fmt.Errorf("bo: observation %d has dim %d, space has %d", i, len(o.U), len(s.Space.Dims))
		}
	}
	for i, p := range s.Pending {
		if len(p) != len(s.Space.Dims) {
			return nil, fmt.Errorf("bo: pending point %d has dim %d, space has %d", i, len(p), len(s.Space.Dims))
		}
	}
	return &s, nil
}

// LoadStateFile reads a snapshot from a file.
func LoadStateFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadState(f)
}

// Resume reconstructs an optimizer from a snapshot, replaying its
// observations and re-registering pending suggestions as constant-liar
// fantasies. opts may refine behaviour; its Seed is overridden by the
// snapshot's seed advanced past the replayed history so the resumed
// process does not repeat the same random draws. (For bit-exact resume
// of a whole tuning run — RNG position included — use the session-level
// snapshot, core.SessionState / stormtune.TunerState, which replays the
// full ask/tell log instead.)
func Resume(s *State, opts Options) *Optimizer {
	opts.Seed = s.Seed + int64(len(s.Observations)) + 1
	opt := NewOptimizer(s.Space, opts)
	for _, o := range s.Observations {
		opt.Observe(o.U, o.Y)
	}
	for _, p := range s.Pending {
		opt.pending = append(opt.pending, append([]float64(nil), p...))
	}
	return opt
}
