package bo

import (
	"math"
	"testing"
)

func TestEnumValuePanicsOnNonEnum(t *testing.T) {
	s := MustSpace(Dim{Name: "x", Kind: Float, Min: 0, Max: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.EnumValue(0, 0)
}

func TestMustSpacePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustSpace(Dim{Name: "bad", Kind: Float, Min: 2, Max: 1})
}

func TestDecodePanicsOnWrongDim(t *testing.T) {
	s := MustSpace(Dim{Name: "x", Kind: Float, Min: 0, Max: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Decode([]float64{0.1, 0.2})
}

func TestObservePanicsOnWrongDim(t *testing.T) {
	s := MustSpace(Dim{Name: "x", Kind: Float, Min: 0, Max: 1})
	opt := NewOptimizer(s, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	opt.Observe([]float64{0.1, 0.2}, 1)
}

func TestSeedCandidatesAreConsidered(t *testing.T) {
	s := MustSpace(
		Dim{Name: "x", Kind: Float, Min: 0, Max: 1},
		Dim{Name: "y", Kind: Float, Min: 0, Max: 1},
	)
	// An objective whose optimum sits exactly on a seeded point that
	// random candidates are unlikely to hit precisely.
	target := []float64{0.123456, 0.654321}
	opt := NewOptimizer(s, Options{
		Seed:           3,
		Candidates:     50,
		HyperSamples:   2,
		SeedCandidates: [][]float64{target},
		InitialDesign:  3,
	})
	obj := func(u []float64) float64 {
		d0 := u[0] - target[0]
		d1 := u[1] - target[1]
		return -(d0*d0 + d1*d1)
	}
	// The local search may refine around the seed, so assert the
	// optimizer samples its close neighbourhood rather than the exact
	// point.
	closest := math.Inf(1)
	for i := 0; i < 15; i++ {
		u := opt.Suggest()
		d := math.Hypot(u[0]-target[0], u[1]-target[1])
		if d < closest {
			closest = d
		}
		opt.Observe(u, obj(u))
	}
	if closest > 0.05 {
		t.Fatalf("optimizer never came near the seeded optimum (closest %v)", closest)
	}
}

func TestBestOnEmptyOptimizer(t *testing.T) {
	s := MustSpace(Dim{Name: "x", Kind: Float, Min: 0, Max: 1})
	opt := NewOptimizer(s, Options{})
	if _, _, ok := opt.Best(); ok {
		t.Fatal("Best should report !ok before observations")
	}
}

func TestMeanStdDegenerate(t *testing.T) {
	m, sd := meanStd(nil)
	if m != 0 || sd != 1 {
		t.Fatalf("meanStd(nil) = %v, %v", m, sd)
	}
	m, sd = meanStd([]float64{3, 3, 3})
	if m != 3 || sd != 1 {
		t.Fatalf("constant meanStd = %v, %v (std must clamp to 1)", m, sd)
	}
}

func TestScoreMarginalEmpty(t *testing.T) {
	if !math.IsInf(scoreMarginal(EI{}, nil, nil, 0), -1) {
		t.Fatal("empty marginal should be -Inf")
	}
}
