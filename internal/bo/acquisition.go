package bo

import (
	"math"

	"stormtune/internal/stats"
)

// Acquisition scores a candidate point given the GP posterior (mu,
// sigma) and the incumbent best observation. Larger is better. The
// optimizer maximizes the objective, so best is the current maximum.
type Acquisition interface {
	Score(mu, sigma, best float64) float64
	Name() string
}

// EI is the Expected Improvement acquisition of Mockus (1978), the
// function the paper uses ("we use Expected Improvement, as it provides
// a good tradeoff between exploration and exploitation and it is the
// method implemented in Spearmint"):
//
//	EI(x) = E[max(0, f(x) − f_max)] = σ (z Φ(z) + φ(z)),  z = (μ−f_max−ξ)/σ
type EI struct {
	// Xi is the optional exploration bonus ξ (0 reproduces the classic
	// formula).
	Xi float64
}

// Score returns the expected improvement over best.
func (a EI) Score(mu, sigma, best float64) float64 {
	if sigma <= 0 {
		if v := mu - best - a.Xi; v > 0 {
			return v
		}
		return 0
	}
	z := (mu - best - a.Xi) / sigma
	return sigma * (z*stats.NormalCDF(z) + stats.NormalPDF(z))
}

// Name identifies the acquisition in logs.
func (a EI) Name() string { return "ei" }

// PI is the Probability of Improvement acquisition.
type PI struct{ Xi float64 }

// Score returns P(f(x) > best + ξ).
func (a PI) Score(mu, sigma, best float64) float64 {
	if sigma <= 0 {
		if mu > best+a.Xi {
			return 1
		}
		return 0
	}
	return stats.NormalCDF((mu - best - a.Xi) / sigma)
}

// Name identifies the acquisition in logs.
func (a PI) Name() string { return "pi" }

// UCB is the GP Upper Confidence Bound acquisition μ + κσ.
type UCB struct{ Kappa float64 }

// Score returns μ + κσ (best is ignored).
func (a UCB) Score(mu, sigma, _ float64) float64 {
	k := a.Kappa
	if k == 0 {
		k = 2
	}
	return mu + k*sigma
}

// Name identifies the acquisition in logs.
func (a UCB) Name() string { return "ucb" }

// ensure interface compliance at compile time.
var (
	_ Acquisition = EI{}
	_ Acquisition = PI{}
	_ Acquisition = UCB{}
)

// scoreMarginal averages an acquisition over a set of GP posterior
// predictions, one per hyperparameter sample (Spearmint's
// marginalization over kernel hyperparameters).
func scoreMarginal(acq Acquisition, mus, sigmas []float64, best float64) float64 {
	s := 0.0
	for i := range mus {
		s += acq.Score(mus[i], sigmas[i], best)
	}
	if len(mus) == 0 {
		return math.Inf(-1)
	}
	return s / float64(len(mus))
}
