package bo

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpaceValidation(t *testing.T) {
	if _, err := NewSpace(Dim{Name: "x", Kind: Float, Min: 1, Max: 0}); err == nil {
		t.Fatal("inverted bounds accepted")
	}
	if _, err := NewSpace(Dim{Name: "x", Kind: Float, Min: 0, Max: 1, Log: true}); err == nil {
		t.Fatal("log scale with min=0 accepted")
	}
	if _, err := NewSpace(Dim{Name: "x", Kind: Int, Min: 0.5, Max: 3}); err == nil {
		t.Fatal("fractional int bounds accepted")
	}
	if _, err := NewSpace(Dim{Name: "x", Kind: Enum, Values: []string{"only"}}); err == nil {
		t.Fatal("single-value enum accepted")
	}
	if _, err := NewSpace(
		Dim{Name: "a", Kind: Float, Min: 0, Max: 1},
		Dim{Name: "b", Kind: Int, Min: 1, Max: 10},
		Dim{Name: "c", Kind: Enum, Values: []string{"x", "y"}},
	); err != nil {
		t.Fatalf("valid space rejected: %v", err)
	}
}

func TestDecodeBounds(t *testing.T) {
	s := MustSpace(
		Dim{Name: "f", Kind: Float, Min: -2, Max: 2},
		Dim{Name: "i", Kind: Int, Min: 1, Max: 64},
		Dim{Name: "e", Kind: Enum, Values: []string{"a", "b", "c"}},
	)
	lo := s.Decode([]float64{0, 0, 0})
	hi := s.Decode([]float64{1, 1, 1})
	if lo[0] != -2 || hi[0] != 2 {
		t.Fatalf("float decode wrong: %v %v", lo[0], hi[0])
	}
	if lo[1] != 1 || hi[1] != 64 {
		t.Fatalf("int decode wrong: %v %v", lo[1], hi[1])
	}
	if lo[2] != 0 || hi[2] != 2 {
		t.Fatalf("enum decode wrong: %v %v", lo[2], hi[2])
	}
	if s.EnumValue(2, hi[2]) != "c" {
		t.Fatalf("enum label wrong")
	}
	// Out-of-range unit coordinates are clamped.
	v := s.Decode([]float64{-0.5, 1.5, 2})
	if v[0] != -2 || v[1] != 64 || v[2] != 2 {
		t.Fatalf("clamping failed: %v", v)
	}
}

func TestLogScaleDecode(t *testing.T) {
	s := MustSpace(Dim{Name: "bs", Kind: Int, Min: 100, Max: 1000000, Log: true})
	mid := s.Decode([]float64{0.5})[0]
	// Geometric midpoint of 1e2..1e6 is 1e4.
	if math.Abs(mid-10000) > 100 {
		t.Fatalf("log midpoint = %v, want ≈10000", mid)
	}
}

func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	s := MustSpace(
		Dim{Name: "f", Kind: Float, Min: -3, Max: 7},
		Dim{Name: "i", Kind: Int, Min: 0, Max: 100},
		Dim{Name: "l", Kind: Float, Min: 0.001, Max: 1000, Log: true},
	)
	f := func(a, b, c float64) bool {
		u := []float64{frac(a), frac(b), frac(c)}
		vals := s.Decode(u)
		u2 := s.Encode(vals)
		vals2 := s.Decode(u2)
		for i := range vals {
			tol := 1e-9 * math.Max(1, math.Abs(vals[i]))
			if math.Abs(vals[i]-vals2[i]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func frac(x float64) float64 {
	v := math.Abs(math.Mod(x, 1))
	if math.IsNaN(v) {
		return 0.5
	}
	return v
}

func TestEIProperties(t *testing.T) {
	ei := EI{}
	// Zero sigma, mu below best: no improvement possible.
	if ei.Score(1, 0, 2) != 0 {
		t.Fatal("EI must be 0 when mu<best and sigma=0")
	}
	// Zero sigma, mu above best: deterministic improvement.
	if math.Abs(ei.Score(3, 0, 2)-1) > 1e-12 {
		t.Fatal("EI must equal mu-best when sigma=0")
	}
	// EI grows with sigma at fixed mu=best.
	if !(ei.Score(0, 2, 0) > ei.Score(0, 1, 0)) {
		t.Fatal("EI should grow with sigma")
	}
	// EI grows with mu at fixed sigma.
	if !(ei.Score(1, 1, 0) > ei.Score(0, 1, 0)) {
		t.Fatal("EI should grow with mu")
	}
	// EI is always non-negative.
	if ei.Score(-10, 0.1, 0) < 0 {
		t.Fatal("EI must be non-negative")
	}
}

func TestPIAndUCB(t *testing.T) {
	pi := PI{}
	if math.Abs(pi.Score(0, 1, 0)-0.5) > 1e-12 {
		t.Fatalf("PI(mu=best) = %v, want 0.5", pi.Score(0, 1, 0))
	}
	if pi.Score(5, 0, 0) != 1 || pi.Score(-5, 0, 0) != 0 {
		t.Fatal("PI degenerate cases wrong")
	}
	ucb := UCB{Kappa: 2}
	if ucb.Score(1, 1, 99) != 3 {
		t.Fatalf("UCB = %v, want 3", ucb.Score(1, 1, 99))
	}
	// Default kappa.
	if (UCB{}).Score(0, 1, 0) != 2 {
		t.Fatal("UCB default kappa should be 2")
	}
}

// quadratic test objective with maximum at (0.3, 0.7).
func quadObj(u []float64) float64 {
	dx := u[0] - 0.3
	dy := u[1] - 0.7
	return -(dx*dx + dy*dy)
}

func TestOptimizerFindsQuadraticMax(t *testing.T) {
	s := MustSpace(
		Dim{Name: "x", Kind: Float, Min: 0, Max: 1},
		Dim{Name: "y", Kind: Float, Min: 0, Max: 1},
	)
	opt := NewOptimizer(s, Options{Seed: 3, Candidates: 400, HyperSamples: 3})
	for i := 0; i < 25; i++ {
		u := opt.Suggest()
		opt.Observe(u, quadObj(u))
	}
	u, y, ok := opt.Best()
	if !ok {
		t.Fatal("no best after 25 steps")
	}
	if y < -0.02 {
		t.Fatalf("best objective %v too far from 0 (u=%v)", y, u)
	}
}

func TestOptimizerBeatsRandomSearch(t *testing.T) {
	s := MustSpace(
		Dim{Name: "x", Kind: Float, Min: 0, Max: 1},
		Dim{Name: "y", Kind: Float, Min: 0, Max: 1},
	)
	budget := 20
	opt := NewOptimizer(s, Options{Seed: 5, Candidates: 300, HyperSamples: 3})
	for i := 0; i < budget; i++ {
		u := opt.Suggest()
		opt.Observe(u, quadObj(u))
	}
	_, boBest, _ := opt.Best()

	rng := rand.New(rand.NewSource(5))
	randBest := math.Inf(-1)
	for i := 0; i < budget; i++ {
		u := []float64{rng.Float64(), rng.Float64()}
		if v := quadObj(u); v > randBest {
			randBest = v
		}
	}
	if boBest < randBest-0.01 {
		t.Fatalf("BO (%v) should not lose clearly to random (%v)", boBest, randBest)
	}
}

func TestOptimizerInitialDesignIsLHS(t *testing.T) {
	s := MustSpace(Dim{Name: "x", Kind: Float, Min: 0, Max: 1})
	opt := NewOptimizer(s, Options{Seed: 1, InitialDesign: 4})
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		u := opt.Suggest()
		opt.Observe(u, 0)
		// Stratification across separate Suggest calls is asserted by
		// TestInitialDesignStratified; here just the unit-cube bound.
		if u[0] < 0 || u[0] >= 1 {
			t.Fatalf("initial point out of range: %v", u)
		}
		seen[i] = true
	}
	if opt.N() != 4 {
		t.Fatalf("N = %d", opt.N())
	}
}

func TestObserveUnsolicitedPoint(t *testing.T) {
	s := MustSpace(Dim{Name: "x", Kind: Float, Min: 0, Max: 1})
	opt := NewOptimizer(s, Options{Seed: 1})
	opt.Observe([]float64{0.4}, 7)
	u, y, ok := opt.Best()
	if !ok || y != 7 || u[0] != 0.4 {
		t.Fatalf("best = %v %v %v", u, y, ok)
	}
}

func TestOptimizerHandlesConstantObjective(t *testing.T) {
	s := MustSpace(Dim{Name: "x", Kind: Float, Min: 0, Max: 1})
	opt := NewOptimizer(s, Options{Seed: 2, Candidates: 100, HyperSamples: 2})
	for i := 0; i < 12; i++ {
		u := opt.Suggest()
		opt.Observe(u, 5.0) // zero variance must not crash standardization
	}
	_, y, _ := opt.Best()
	if y != 5 {
		t.Fatalf("best = %v", y)
	}
}

func TestStateRoundTrip(t *testing.T) {
	s := MustSpace(
		Dim{Name: "x", Kind: Float, Min: 0, Max: 1},
		Dim{Name: "n", Kind: Int, Min: 1, Max: 8},
	)
	opt := NewOptimizer(s, Options{Seed: 11})
	for i := 0; i < 5; i++ {
		u := opt.Suggest()
		opt.Observe(u, quadObj([]float64{u[0], 0.7}))
	}
	var buf bytes.Buffer
	if err := opt.Snapshot().Save(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res := Resume(st, Options{})
	if res.N() != 5 {
		t.Fatalf("resumed N = %d", res.N())
	}
	_, y1, _ := opt.Best()
	_, y2, _ := res.Best()
	if y1 != y2 {
		t.Fatalf("best mismatch after resume: %v vs %v", y1, y2)
	}
	// Resumed optimizer keeps working.
	u := res.Suggest()
	res.Observe(u, -1)
	if res.N() != 6 {
		t.Fatalf("resumed optimizer did not continue")
	}
}

func TestLoadStateRejectsCorrupt(t *testing.T) {
	if _, err := LoadState(bytes.NewBufferString("{")); err == nil {
		t.Fatal("accepted truncated JSON")
	}
	if _, err := LoadState(bytes.NewBufferString(`{"version":99}`)); err == nil {
		t.Fatal("accepted wrong version")
	}
	if _, err := LoadState(bytes.NewBufferString(`{"version":1,"space":{"dims":[{"name":"x","kind":0,"min":0,"max":1}]},"observations":[{"u":[0.1,0.2],"y":1}]}`)); err == nil {
		t.Fatal("accepted observation dim mismatch")
	}
}

func TestMaxGPPointsTruncation(t *testing.T) {
	s := MustSpace(Dim{Name: "x", Kind: Float, Min: 0, Max: 1})
	opt := NewOptimizer(s, Options{Seed: 1, MaxGPPoints: 5})
	for i := 0; i < 9; i++ {
		opt.Observe([]float64{float64(i) / 10}, float64(i))
	}
	xs, ys := opt.trainingSet()
	if len(xs) != 5 || len(ys) != 5 {
		t.Fatalf("training set size = %d, want 5", len(xs))
	}
	if ys[0] != 4 {
		t.Fatalf("should keep most recent points, got first y = %v", ys[0])
	}
}

func TestSuggestRecordsDuration(t *testing.T) {
	s := MustSpace(Dim{Name: "x", Kind: Float, Min: 0, Max: 1})
	opt := NewOptimizer(s, Options{Seed: 1})
	opt.Suggest()
	if opt.LastStepDuration <= 0 {
		t.Fatal("LastStepDuration not recorded")
	}
}
