package bo

import (
	"errors"
	"math"

	"stormtune/internal/gp"
)

// HyperState is the serializable hyperparameter posterior of a running
// optimizer: the slice samples of the current refit epoch. A retune
// session seeds its first epoch from the incumbent session's HyperState
// (Options.InitHypers), skipping the cold slice-sampling burn — the
// cache-reuse contract between core retune sessions and their
// incumbents.
type HyperState struct {
	Hypers [][]float64 `json:"hypers"`
}

// HyperState returns a copy of the optimizer's current hyperparameter
// samples, or nil before the first surrogate refit.
func (opt *Optimizer) HyperState() *HyperState {
	if len(opt.cache.hypers) == 0 {
		return nil
	}
	hs := &HyperState{Hypers: make([][]float64, len(opt.cache.hypers))}
	for i, h := range opt.cache.hypers {
		hs.Hypers[i] = append([]float64(nil), h...)
	}
	return hs
}

// fantasyPoint is one constant-liar fantasy conditioned into the
// surrogate ensemble: a pending point and its standardized lie value,
// fixed at append time so retraction can replay the exact inverse.
type fantasyPoint struct {
	u []float64
	y float64
}

// modelCache is the per-optimizer surrogate cache. Everything under
// "epoch state" is frozen between hyperparameter refits; everything
// under "conditioning state" tracks what the ensemble is currently
// conditioned on (real observations first, fantasies last — the
// canonical order that makes fantasy retraction a trailing downdate).
//
// Invalidation rule: only a refit epoch (refitEpoch) replaces the epoch
// state; observations and fantasies between epochs extend and retract
// the cached factors incrementally.
type modelCache struct {
	// epoch state
	my, sy float64     // frozen y-standardization
	hypers [][]float64 // slice samples (log space), one per ensemble member
	fitN   int         // observation count at the last refit
	approx bool        // past ApproxAfter: RFF ensemble, hypers frozen for good

	// conditioning state
	models []gp.Surrogate
	nObs   int // real observations conditioned into models
	fant   []fantasyPoint
}

// hyperFitCap bounds the conditioning set used for slice sampling when
// an epoch starts above the approximation threshold (cold start on a
// huge history): hypers are fit on a deterministic strided subset.
const hyperFitCap = 256

// needRefit reports whether the next suggestion must start a new refit
// epoch. The schedule is a pure function of the observation count (no
// clock, no RNG): refit on every new observation while the history is
// tiny, then only after ~25% growth — that amortization is what turns
// slice sampling from a per-ask cost into a per-epoch one. Once the
// approximate regime is entered hypers are frozen permanently.
func (opt *Optimizer) needRefit() bool {
	c := &opt.cache
	if len(c.hypers) == 0 || c.fitN == 0 {
		return true
	}
	if c.approx {
		return false
	}
	n := len(opt.obs)
	if n == c.fitN {
		return false
	}
	if n < 16 {
		return true
	}
	step := c.fitN / 4
	if step < 1 {
		step = 1
	}
	return n >= c.fitN+step
}

// refitEpoch starts a new epoch: freeze the y-standardization on the
// current training set and draw fresh hyperparameter samples (slice
// sampling, the only RNG consumer on the model side). Models are not
// built here — the per-ask sync constructs or extends them against the
// new epoch state. On the first epoch, Options.InitHypers short-
// circuits the sampling entirely.
func (opt *Optimizer) refitEpoch() error {
	c := &opt.cache
	d := opt.Space.D()
	xs, ys := opt.trainingSet()
	if len(ys) == 0 {
		return gp.ErrNoData
	}
	my, sy := meanStd(ys)
	ny := make([]float64, len(ys))
	for i, v := range ys {
		ny[i] = (v - my) / sy
	}
	n := len(opt.obs)
	approx := opt.approxThreshold() > 0 && n > opt.approxThreshold() && opt.Opts.MaxGPPoints <= 0

	var hypers [][]float64
	if c.fitN == 0 && opt.Opts.InitHypers != nil {
		hypers = opt.validInitHypers(d)
	}
	if hypers == nil {
		fx, fy := xs, ny
		if approx && len(fx) > hyperFitCap {
			// Deterministic strided subset: slice sampling on the full
			// history would be O(n³) per posterior evaluation.
			stride := len(fx) / hyperFitCap
			sx := make([][]float64, 0, hyperFitCap)
			sy2 := make([]float64, 0, hyperFitCap)
			for i := 0; i < len(fx) && len(sx) < hyperFitCap; i += stride {
				sx = append(sx, fx[i])
				sy2 = append(sy2, fy[i])
			}
			fx, fy = sx, sy2
		}
		g := gp.New(opt.Opts.Kernel(d), opt.Opts.NoiseVar)
		g.Prior = opt.Opts.PriorMean
		if err := g.Fit(fx, fy); err != nil {
			return err
		}
		if opt.Opts.HyperSamples <= 1 {
			g.FitMAP(opt.rng, 5)
			hypers = [][]float64{g.HyperVector()}
		} else {
			hypers = g.SliceSampleHypers(opt.rng, opt.Opts.HyperSamples, 1)
		}
	}
	if len(hypers) == 0 {
		return errors.New("bo: no hyperparameter samples")
	}
	c.my, c.sy = my, sy
	c.hypers = hypers
	c.fitN = n
	c.approx = approx
	// Epoch state changed: every cached factor is invalid.
	c.models = nil
	c.nObs = 0
	c.fant = nil
	return nil
}

// validInitHypers filters Options.InitHypers down to vectors matching
// the kernel's hyperparameter count, returning nil when nothing
// survives (the epoch then samples normally).
func (opt *Optimizer) validInitHypers(d int) [][]float64 {
	want := len(opt.Opts.Kernel(d).Hypers()) + 1
	var out [][]float64
	for _, h := range opt.Opts.InitHypers.Hypers {
		if len(h) == want {
			out = append(out, append([]float64(nil), h...))
		}
	}
	return out
}

// approxThreshold resolves the exact→approximate switchover point:
// Options.ApproxAfter, defaulting to 1024, with negative values
// disabling the approximation entirely.
func (opt *Optimizer) approxThreshold() int {
	switch {
	case opt.Opts.ApproxAfter < 0:
		return 0
	case opt.Opts.ApproxAfter == 0:
		return 1024
	default:
		return opt.Opts.ApproxAfter
	}
}

// rebuildModels constructs the surrogate ensemble from scratch for the
// current epoch, conditioned on the training window plus the given
// fantasies (in that canonical order). This is the cold path: refit
// epochs, windowed (MaxGPPoints) sessions, the DenseRebuild reference
// mode, and recovery from a failed incremental update all land here.
func (opt *Optimizer) rebuildModels(fant []fantasyPoint) error {
	c := &opt.cache
	d := opt.Space.D()
	xs, ys := opt.trainingSet()
	if len(ys) == 0 {
		return gp.ErrNoData
	}
	axs := make([][]float64, 0, len(xs)+len(fant))
	ays := make([]float64, 0, len(ys)+len(fant))
	axs = append(axs, xs...)
	for _, v := range ys {
		ays = append(ays, (v-c.my)/c.sy)
	}
	for _, f := range fant {
		axs = append(axs, f.u)
		ays = append(ays, f.y)
	}

	models := make([]gp.Surrogate, len(c.hypers))
	if c.approx {
		parallelFor(opt.Opts.Workers, len(c.hypers), func(k int) {
			models[k] = opt.buildRFF(d, c.hypers[k], axs, ays)
		})
	} else {
		parallelFor(opt.Opts.Workers, len(c.hypers), func(k int) {
			g := gp.New(opt.Opts.Kernel(d), opt.Opts.NoiseVar)
			g.Prior = opt.Opts.PriorMean
			if err := g.SetHypersAndRefit(c.hypers[k]); err != nil {
				return
			}
			if err := g.Fit(axs, ays); err != nil {
				return
			}
			models[k] = g
		})
	}
	compact := models[:0]
	for _, m := range models {
		if m != nil {
			compact = append(compact, m)
		}
	}
	if len(compact) == 0 {
		return errors.New("bo: surrogate ensemble is empty")
	}
	c.models = compact
	c.nObs = len(opt.obs)
	c.fant = append(c.fant[:0], fant...)
	return nil
}

// buildRFF constructs one random-Fourier-feature ensemble member at the
// given hyper sample and conditions it on the data. Falls back to an
// exact GP when the kernel has no spectral sampler.
func (opt *Optimizer) buildRFF(d int, h []float64, xs [][]float64, ys []float64) gp.Surrogate {
	kern := opt.Opts.Kernel(d)
	nk := len(kern.Hypers())
	if len(h) != nk+1 {
		return nil
	}
	kern.SetHypers(h[:nk])
	noise := math.Exp(h[nk])
	m := opt.Opts.RFFFeatures
	if m <= 0 {
		m = 256
	}
	r, err := gp.NewRFF(kern, noise, m, opt.rffSeed(h))
	if err != nil {
		// Kernel without a spectral sampler: stay exact. Slow at scale,
		// but correct.
		g := gp.New(kern, noise)
		g.Prior = opt.Opts.PriorMean
		if err := g.Fit(xs, ys); err != nil {
			return nil
		}
		return g
	}
	r.Prior = opt.Opts.PriorMean
	for i := range xs {
		if err := r.Observe(xs[i], ys[i]); err != nil {
			return nil
		}
	}
	return r
}

// rffSeed derives a deterministic feature-draw seed from the optimizer
// seed and the hyper sample, so distinct ensemble members get distinct
// (but reproducible) feature maps.
func (opt *Optimizer) rffSeed(h []float64) int64 {
	s := opt.Opts.Seed*1000003 + 17
	for _, v := range h {
		s = s*31 + int64(math.Float64bits(v)&0xffffffff)
	}
	return s
}

// syncModels brings the cached ensemble to the canonical conditioning
// state — all real observations followed by exactly the given
// fantasies — using incremental factor updates only: retract stale
// fantasies in reverse (trailing downdates), extend with observations
// that arrived since the last ask, then extend with the new fantasies.
// Any failure falls back to a cold rebuild of the same state.
func (opt *Optimizer) syncModels(fant []fantasyPoint) error {
	c := &opt.cache
	if len(c.models) == 0 {
		return opt.rebuildModels(fant)
	}
	for i := len(c.fant) - 1; i >= 0; i-- {
		f := c.fant[i]
		for _, m := range c.models {
			if err := m.Retract(f.u, f.y); err != nil {
				return opt.rebuildModels(fant)
			}
		}
		c.fant = c.fant[:i]
	}
	for i := c.nObs; i < len(opt.obs); i++ {
		o := opt.obs[i]
		ystd := (o.Y - c.my) / c.sy
		for _, m := range c.models {
			if err := m.Observe(o.U, ystd); err != nil {
				return opt.rebuildModels(fant)
			}
		}
		c.nObs = i + 1
	}
	for _, f := range fant {
		for _, m := range c.models {
			if err := m.Observe(f.u, f.y); err != nil {
				return opt.rebuildModels(fant)
			}
		}
		c.fant = append(c.fant, f)
	}
	return nil
}
