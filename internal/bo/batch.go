package bo

import (
	"math"
	"sync"
	"time"

	"stormtune/internal/gp"
)

// LiarStrategy selects the fantasy objective value assigned to pending
// points when the surrogate is conditioned on an in-flight batch
// (Ginsbourger, Le Riche & Carraro's constant-liar heuristic).
type LiarStrategy int

const (
	// LiarMin lies with the worst observed objective (we maximize, so
	// this is the pessimistic lie). It pushes the acquisition away from
	// already-suggested points and gives the most diverse batches; the
	// default.
	LiarMin LiarStrategy = iota
	// LiarMean lies with the mean observed objective.
	LiarMean
	// LiarMax lies with the best observed objective — the greedy lie
	// that keeps the batch exploiting one region.
	LiarMax
)

// value computes the lie for a non-empty observed objective slice.
func (l LiarStrategy) value(ys []float64) float64 {
	switch l {
	case LiarMean:
		s := 0.0
		for _, y := range ys {
			s += y
		}
		return s / float64(len(ys))
	case LiarMax:
		m := math.Inf(-1)
		for _, y := range ys {
			if y > m {
				m = y
			}
		}
		return m
	default:
		m := math.Inf(1)
		for _, y := range ys {
			if y < m {
				m = y
			}
		}
		return m
	}
}

// SuggestBatch proposes q unit-cube points to evaluate concurrently.
// Initial-design points come from the shared Latin hypercube; once the
// surrogate takes over, each successive point is chosen with the
// already-suggested (pending) points conditioned in as constant-liar
// fantasies, so the batch spreads over the acquisition landscape instead
// of collapsing onto one maximum. Observe each returned point (in any
// order) to retire its fantasy. The result is deterministic for a fixed
// seed and any Workers count.
func (opt *Optimizer) SuggestBatch(q int) [][]float64 {
	//lint:wallclock telemetry: decision-time accounting, never a proposal input
	start := time.Now()
	//lint:wallclock telemetry: decision-time accounting, never a proposal input
	defer func() { opt.LastStepDuration = time.Since(start) }()
	if q <= 0 {
		return nil
	}
	out := make([][]float64, 0, q)
	for i := 0; i < q; i++ {
		out = append(out, opt.suggestOne())
	}
	return out
}

// Pending returns the number of suggested-but-unobserved points the
// surrogate is currently treating as constant-liar fantasies.
func (opt *Optimizer) Pending() int { return len(opt.pending) }

// haltonOffset maps the observation count to the start index of the
// Halton block mixed into the candidate grid, bounded to [1, 999] (the
// sequence degenerates to the origin at index 0, so 0 is clamped).
func haltonOffset(nObs int) int {
	off := (1 + nObs*17) % 1000
	if off == 0 {
		off = 1
	}
	return off
}

// scorer evaluates the hyper-marginalized acquisition over the
// surrogate ensemble. The models are only read, so one scorer can
// serve many goroutines via per-worker closures.
type scorer struct {
	models []gp.Surrogate
	acq    Acquisition
	bestY  float64
}

// worker returns a scoring closure with its own scratch buffers: the
// per-model gp.Scratch makes every posterior query allocation-free,
// which matters when the grid is thousands of candidates per ask.
func (s *scorer) worker() func(u []float64) float64 {
	mus := make([]float64, len(s.models))
	sigmas := make([]float64, len(s.models))
	scratch := make([]gp.Scratch, len(s.models))
	return func(u []float64) float64 {
		for i, m := range s.models {
			mu, s2 := m.PredictInto(&scratch[i], u)
			mus[i] = mu
			sigmas[i] = math.Sqrt(s2)
		}
		return scoreMarginal(s.acq, mus, sigmas, s.bestY)
	}
}

// argmax scans the candidate grid with up to w workers and returns the
// index and score of the best candidate. Ties break toward the lowest
// index, so the result matches the sequential scan for any w.
func (s *scorer) argmax(cands [][]float64, w int) (int, float64) {
	n := len(cands)
	if n == 0 {
		return -1, math.Inf(-1)
	}
	if w > n {
		w = n
	}
	if w <= 1 || n < 64 {
		score := s.worker()
		bi, bs := 0, math.Inf(-1)
		for i, c := range cands {
			if v := score(c); v > bs {
				bi, bs = i, v
			}
		}
		return bi, bs
	}

	type chunkBest struct {
		idx   int
		score float64
	}
	bests := make([]chunkBest, w)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo := k * n / w
		hi := (k + 1) * n / w
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			score := s.worker()
			best := chunkBest{idx: -1, score: math.Inf(-1)}
			for i := lo; i < hi; i++ {
				if v := score(cands[i]); v > best.score {
					best = chunkBest{idx: i, score: v}
				}
			}
			bests[k] = best
		}(k, lo, hi)
	}
	wg.Wait()
	bi, bs := 0, math.Inf(-1)
	for _, b := range bests {
		if b.idx >= 0 && (b.score > bs || (b.score == bs && b.idx < bi)) {
			bi, bs = b.idx, b.score
		}
	}
	return bi, bs
}

// parallelFor runs fn(i) for every i in [0, n) across up to w
// goroutines. Each index must write only to its own slot of any shared
// output, which keeps results independent of scheduling order.
func parallelFor(w, n int, fn func(i int)) {
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo := k * n / w
		hi := (k + 1) * n / w
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
