package bo

import (
	"math"
	"math/rand"
	"testing"

	"stormtune/internal/gp"
)

// TestHaltonOffsetBounded is the regression test for the operator-
// precedence bug: `1+len*17%1000` parsed as `1+((len*17)%1000)`, which
// reaches 1000 instead of staying inside the intended bound.
func TestHaltonOffsetBounded(t *testing.T) {
	for n := 0; n < 3000; n++ {
		off := haltonOffset(n)
		if off < 1 || off > 999 {
			t.Fatalf("haltonOffset(%d) = %d, want within [1, 999]", n, off)
		}
	}
	// n = 647 is where the old expression escaped the bound:
	// 1 + ((647*17) % 1000) = 1000.
	if old := 1 + 647*17%1000; old != 1000 {
		t.Fatalf("precedence premise changed: %d", old)
	}
	if got := haltonOffset(647); got != 1 {
		t.Fatalf("haltonOffset(647) = %d, want 1", got)
	}
}

// TestInitialDesignStratified verifies the LHS-seeding fix: the initial
// design is one stratified Latin hypercube handed out point by point,
// so in 1-D every point lands in a distinct stratum.
func TestInitialDesignStratified(t *testing.T) {
	const k = 8
	s := MustSpace(Dim{Name: "x", Kind: Float, Min: 0, Max: 1})
	opt := NewOptimizer(s, Options{Seed: 1, InitialDesign: k})
	seen := map[int]bool{}
	for i := 0; i < k; i++ {
		u := opt.Suggest()
		if u[0] < 0 || u[0] >= 1 {
			t.Fatalf("initial point out of range: %v", u)
		}
		stratum := int(u[0] * k)
		if seen[stratum] {
			t.Fatalf("stratum %d hit twice — initial design is not a Latin hypercube", stratum)
		}
		seen[stratum] = true
		opt.Observe(u, 0)
	}
	if len(seen) != k {
		t.Fatalf("covered %d strata, want %d", len(seen), k)
	}
}

func TestLiarValues(t *testing.T) {
	ys := []float64{1, 2, 6}
	if v := LiarMin.value(ys); v != 1 {
		t.Fatalf("LiarMin = %v", v)
	}
	if v := LiarMean.value(ys); v != 3 {
		t.Fatalf("LiarMean = %v", v)
	}
	if v := LiarMax.value(ys); v != 6 {
		t.Fatalf("LiarMax = %v", v)
	}
}

func TestSuggestBatchCountsAndPending(t *testing.T) {
	s := MustSpace(
		Dim{Name: "x", Kind: Float, Min: 0, Max: 1},
		Dim{Name: "y", Kind: Float, Min: 0, Max: 1},
	)
	opt := NewOptimizer(s, Options{Seed: 2, InitialDesign: 3, Candidates: 100, HyperSamples: 2})
	batch := opt.SuggestBatch(4)
	if len(batch) != 4 {
		t.Fatalf("batch size = %d", len(batch))
	}
	if opt.Pending() != 4 {
		t.Fatalf("pending = %d, want 4", opt.Pending())
	}
	for _, u := range batch {
		opt.Observe(u, quadObj(u))
	}
	if opt.Pending() != 0 {
		t.Fatalf("pending after observe = %d", opt.Pending())
	}
	if opt.SuggestBatch(0) != nil {
		t.Fatal("q=0 should return nil")
	}
	if opt.LastStepDuration <= 0 {
		t.Fatal("batch duration not recorded")
	}
}

// TestSuggestBatchSpreads checks the constant-liar effect: once the GP
// drives suggestions, a batch must not collapse onto one acquisition
// maximum.
func TestSuggestBatchSpreads(t *testing.T) {
	s := MustSpace(
		Dim{Name: "x", Kind: Float, Min: 0, Max: 1},
		Dim{Name: "y", Kind: Float, Min: 0, Max: 1},
	)
	opt := NewOptimizer(s, Options{Seed: 4, InitialDesign: 4, Candidates: 200, HyperSamples: 2})
	for i := 0; i < 6; i++ {
		u := opt.Suggest()
		opt.Observe(u, quadObj(u))
	}
	batch := opt.SuggestBatch(4)
	for i := 0; i < len(batch); i++ {
		for j := i + 1; j < len(batch); j++ {
			d := 0.0
			for k := range batch[i] {
				diff := batch[i][k] - batch[j][k]
				d += diff * diff
			}
			if math.Sqrt(d) < 1e-6 {
				t.Fatalf("batch points %d and %d coincide: %v", i, j, batch[i])
			}
		}
	}
}

// TestSuggestBatchDeterministic runs the same seeded optimization with 1
// worker and many workers; every suggestion must be bit-identical.
func TestSuggestBatchDeterministic(t *testing.T) {
	run := func(workers int) [][]float64 {
		s := MustSpace(
			Dim{Name: "x", Kind: Float, Min: 0, Max: 1},
			Dim{Name: "y", Kind: Float, Min: 0, Max: 1},
		)
		opt := NewOptimizer(s, Options{
			Seed: 7, InitialDesign: 4, Candidates: 300, HyperSamples: 3, Workers: workers,
		})
		var all [][]float64
		for round := 0; round < 4; round++ {
			batch := opt.SuggestBatch(3)
			for _, u := range batch {
				all = append(all, u)
				opt.Observe(u, quadObj(u))
			}
		}
		return all
	}
	a := run(1)
	b := run(8)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("suggestion %d differs between 1 and 8 workers: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

// TestBatchRegretParity gives the batch optimizer the same total budget
// as the sequential one on the quadratic objective; its best objective
// must come out within 10% of the sequential result's distance to the
// optimum (both should essentially find the maximum at 0).
func TestBatchRegretParity(t *testing.T) {
	budget := 24
	seqBest := func() float64 {
		s := MustSpace(
			Dim{Name: "x", Kind: Float, Min: 0, Max: 1},
			Dim{Name: "y", Kind: Float, Min: 0, Max: 1},
		)
		opt := NewOptimizer(s, Options{Seed: 3, Candidates: 300, HyperSamples: 3})
		for i := 0; i < budget; i++ {
			u := opt.Suggest()
			opt.Observe(u, quadObj(u))
		}
		_, y, _ := opt.Best()
		return y
	}()
	for _, q := range []int{2, 4} {
		s := MustSpace(
			Dim{Name: "x", Kind: Float, Min: 0, Max: 1},
			Dim{Name: "y", Kind: Float, Min: 0, Max: 1},
		)
		opt := NewOptimizer(s, Options{Seed: 3, Candidates: 300, HyperSamples: 3})
		for done := 0; done < budget; {
			batch := opt.SuggestBatch(q)
			for _, u := range batch {
				opt.Observe(u, quadObj(u))
				done++
			}
		}
		_, y, ok := opt.Best()
		if !ok {
			t.Fatalf("q=%d: no best", q)
		}
		// Regret (distance below the optimum at 0) within 10% of the
		// sequential regret, with an absolute floor for noise-free ties.
		seqRegret := -seqBest
		batchRegret := -y
		if batchRegret > seqRegret*1.1+0.01 {
			t.Fatalf("q=%d: batch regret %v vs sequential %v", q, batchRegret, seqRegret)
		}
	}
}

func TestParallelForMatchesSequential(t *testing.T) {
	for _, w := range []int{1, 2, 7, 16} {
		n := 101
		out := make([]int, n)
		parallelFor(w, n, func(i int) { out[i] = i * i })
		for i := range out {
			if out[i] != i*i {
				t.Fatalf("w=%d: out[%d] = %d", w, i, out[i])
			}
		}
	}
	// n=0 must not hang or panic.
	parallelFor(4, 0, func(int) { t.Fatal("called for empty range") })
}

// TestArgmaxMatchesSequential cross-checks the chunked parallel argmax
// against a plain scan on a fitted surrogate over a fixed grid.
func TestArgmaxMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([][]float64, 12)
	ys := make([]float64, 12)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64()}
		ys[i] = quadObj(xs[i])
	}
	g := gp.New(gp.NewMatern52(2, 0.3), 1e-3)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	sc := scorer{models: []gp.Surrogate{g}, acq: EI{}, bestY: maxOf(ys)}
	cands := make([][]float64, 500)
	for i := range cands {
		cands[i] = []float64{rng.Float64(), rng.Float64()}
	}
	wantIdx, wantScore := sc.argmax(cands, 1)
	for _, w := range []int{2, 4, 16} {
		idx, score := sc.argmax(cands, w)
		if idx != wantIdx || score != wantScore {
			t.Fatalf("w=%d: argmax (%d, %v) != sequential (%d, %v)", w, idx, score, wantIdx, wantScore)
		}
	}
	if idx, _ := sc.argmax(nil, 4); idx != -1 {
		t.Fatalf("empty argmax idx = %d", idx)
	}
}

func maxOf(ys []float64) float64 {
	m := math.Inf(-1)
	for _, y := range ys {
		if y > m {
			m = y
		}
	}
	return m
}
