package bo

import (
	"math"
	"testing"
)

func trustSpace2() *Space {
	return MustSpace(
		Dim{Name: "x", Kind: Float, Min: 0, Max: 1},
		Dim{Name: "y", Kind: Float, Min: 0, Max: 1},
	)
}

func TestTrustRegionWidensOnlyAfterConsecutiveImprovements(t *testing.T) {
	tr := &TrustRegion{Center: []float64{0.5, 0.5}, Radius: 0.1, GrowAfter: 2, Grow: 2, Shrink: 0.5}
	tr.Baseline(10)

	// One improvement: recenter, streak at 1, radius unchanged.
	tr.Observe([]float64{0.55, 0.5}, 11)
	if tr.Radius != 0.1 {
		t.Fatalf("radius widened after a single improvement: %v", tr.Radius)
	}
	if tr.Center[0] != 0.55 {
		t.Fatalf("region did not recenter on the improvement: %v", tr.Center)
	}

	// Second consecutive improvement: widen.
	tr.Observe([]float64{0.6, 0.5}, 12)
	if tr.Radius != 0.2 {
		t.Fatalf("radius after 2 consecutive improvements = %v, want 0.2", tr.Radius)
	}

	// A regression shrinks and resets the streak; the next single
	// improvement must not widen.
	tr.Observe([]float64{0.7, 0.5}, 5)
	if tr.Radius != 0.1 {
		t.Fatalf("radius after regression = %v, want 0.1", tr.Radius)
	}
	if tr.Center[0] != 0.6 {
		t.Fatal("regression must not move the center")
	}
	tr.Observe([]float64{0.62, 0.5}, 13)
	if tr.Radius != 0.1 {
		t.Fatalf("streak survived a regression: radius %v", tr.Radius)
	}
}

func TestTrustRegionRadiusBounds(t *testing.T) {
	tr := &TrustRegion{Center: []float64{0.5}, Radius: 0.4, RadiusMin: 0.05, RadiusMax: 0.45, GrowAfter: 1, Grow: 4, Shrink: 0.01}
	tr.Baseline(1)
	tr.Observe([]float64{0.52}, 2)
	if tr.Radius != 0.45 {
		t.Fatalf("radius not capped at RadiusMax: %v", tr.Radius)
	}
	tr.Observe([]float64{0.9}, 0)
	if tr.Radius != 0.05 {
		t.Fatalf("radius not floored at RadiusMin: %v", tr.Radius)
	}
}

func TestTrustRegionClampAndContains(t *testing.T) {
	tr := &TrustRegion{Center: []float64{0.1, 0.9}, Radius: 0.2}
	c := tr.Clamp([]float64{0.9, 0.05})
	want := []float64{0.3, 0.7}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-12 {
			t.Fatalf("Clamp = %v, want %v", c, want)
		}
	}
	if !tr.Contains(c) {
		t.Fatal("clamped point must be inside the region")
	}
	if tr.Contains([]float64{0.9, 0.9}) {
		t.Fatal("far point reported inside the region")
	}
	// The box is intersected with the unit cube.
	edge := tr.Clamp([]float64{-1, 2})
	if edge[0] != 0 || edge[1] != 1 {
		t.Fatalf("Clamp left the unit cube: %v", edge)
	}
}

func TestOptimizerTrustConfinesEverySuggestion(t *testing.T) {
	space := trustSpace2()
	center := []float64{0.45, 0.55}
	tr := &TrustRegion{Center: append([]float64(nil), center...), Radius: 0.12}
	tr.Baseline(5)
	opt := NewOptimizer(space, Options{
		Seed: 3, Candidates: 120, HyperSamples: 1, LocalSearchIters: 4,
		InitialDesign: 1, Trust: tr,
	})

	// First suggestion with no data is the center itself.
	first := opt.Suggest()
	if !sameVec(first, center) {
		t.Fatalf("first conservative suggestion = %v, want the center %v", first, center)
	}
	opt.Observe(first, 5)

	// Every subsequent suggestion stays inside the live region box —
	// the configured trust bound on per-step change.
	for i := 0; i < 10; i++ {
		u := opt.Suggest()
		if !tr.Contains(u) {
			t.Fatalf("suggestion %d = %v escaped the trust region (center %v radius %v)",
				i, u, tr.Center, tr.Radius)
		}
		// Feed alternating improvement/regression so the region both
		// widens and shrinks during the walk.
		y := 5 + float64(i%2)
		opt.Observe(u, y)
	}
}

func TestOptimizerTrustBatchStaysConfined(t *testing.T) {
	space := trustSpace2()
	tr := &TrustRegion{Center: []float64{0.5, 0.5}, Radius: 0.15}
	tr.Baseline(1)
	opt := NewOptimizer(space, Options{
		Seed: 7, Candidates: 80, HyperSamples: 1, LocalSearchIters: 2,
		InitialDesign: 1, Trust: tr,
	})
	for _, u := range opt.SuggestBatch(4) {
		if !tr.Contains(u) {
			t.Fatalf("batch suggestion %v escaped the trust region", u)
		}
	}
}
