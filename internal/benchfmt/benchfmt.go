// Package benchfmt defines the machine-readable benchmark report
// schema shared by cmd/benchjson (which writes it) and cmd/benchcmp
// (which gates on it), so the two halves of the CI bench pipeline
// cannot drift apart silently.
package benchfmt

import "time"

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	// Name is the benchmark name with the -N CPU suffix stripped.
	Name string `json:"name"`
	// Package is the Go package the benchmark ran in (from the
	// preceding "pkg:" line; empty if go test printed none).
	Package string `json:"package,omitempty"`
	// Procs is the GOMAXPROCS suffix (-8 → 8); 1 if absent.
	Procs int `json:"procs"`
	// Iterations is the b.N the benchmark ran.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline metric.
	NsPerOp float64 `json:"nsPerOp"`
	// Metrics holds every additional "value unit" pair (B/op,
	// allocs/op, custom units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file benchjson writes and benchcmp reads.
type Report struct {
	// GeneratedAt is the UTC wall-clock time of the conversion.
	GeneratedAt time.Time `json:"generatedAt"`
	// GoVersion, GOOS and GOARCH pin the toolchain and platform.
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Benchmarks holds every parsed result in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}
