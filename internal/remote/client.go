package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"stormtune/internal/core"
	"stormtune/internal/storm"
)

// BackendOptions configure a remote backend client.
type BackendOptions struct {
	// HTTPClient overrides the default client (connection pooling makes
	// the default fine for concurrent trials; override for custom
	// transports or TLS).
	HTTPClient *http.Client
	// RequestTimeout bounds one HTTP round trip when the trial carries
	// no deadline of its own. Zero leaves the request bounded only by
	// ctx.
	RequestTimeout time.Duration
	// TransportRetries re-POSTs a request whose transport failed —
	// connection refused, reset, broken pipe — up to this many extra
	// times. Evaluations are pure functions of (config, run index), so
	// re-POSTing is safe. Server-reported evaluation errors are NOT
	// retried here; surfacing those to the session's RetryPolicy keeps
	// one retry budget, observable via TrialFailed/TrialRetried events.
	TransportRetries int
	// TransportBackoff is the wait between transport retries (default
	// 100ms, doubling per retry).
	TransportBackoff time.Duration
}

// Backend is the client side of a remote evaluation service: a
// core.Backend that runs each trial by POSTing it to a Server (e.g. a
// `stormtune serve` worker process). It is safe for concurrent trials
// — RunAsync can keep several requests in flight against one worker,
// or combine several Backends with core.NewPoolBackend to spread trials
// over a worker pool.
type Backend struct {
	base string
	c    *http.Client
	opts BackendOptions
}

// NewBackend builds a client for the server at baseURL (e.g.
// "http://127.0.0.1:8077").
func NewBackend(baseURL string, opts BackendOptions) *Backend {
	c := opts.HTTPClient
	if c == nil {
		c = &http.Client{}
	}
	if opts.TransportBackoff <= 0 {
		opts.TransportBackoff = 100 * time.Millisecond
	}
	return &Backend{base: strings.TrimRight(baseURL, "/"), c: c, opts: opts}
}

// URL returns the server base URL this client talks to.
func (b *Backend) URL() string { return b.base }

// Info fetches the served evaluator's description, letting callers
// verify the worker measures the topology they are tuning.
func (b *Backend) Info(ctx context.Context) (Info, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/info", nil)
	if err != nil {
		return Info{}, err
	}
	resp, err := b.c.Do(req)
	if err != nil {
		return Info{}, fmt.Errorf("remote: info %s: %w", b.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Info{}, fmt.Errorf("remote: info %s: HTTP %d", b.base, resp.StatusCode)
	}
	var info Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return Info{}, fmt.Errorf("remote: info %s: %w", b.base, err)
	}
	return info, nil
}

// Run implements core.Backend: serialize the trial, POST it, decode the
// measurement. Transport failures are retried per the options; any
// error that survives is a lost evaluation for the session's
// RetryPolicy to handle.
func (b *Backend) Run(ctx context.Context, tr core.Trial) (storm.Result, error) {
	body, err := json.Marshal(RunRequest{
		Trial: TrialMeta{
			ID:        tr.ID,
			RunIndex:  tr.RunIndex,
			Attempt:   tr.Attempt,
			TimeoutMS: int64(tr.Timeout / time.Millisecond),
		},
		Config: tr.Config,
	})
	if err != nil {
		return storm.Result{}, fmt.Errorf("remote: encoding trial %d: %w", tr.ID, err)
	}

	var lastErr error
	for try := 0; try <= b.opts.TransportRetries; try++ {
		if try > 0 {
			backoff := b.opts.TransportBackoff << (try - 1)
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				return storm.Result{}, ctx.Err()
			case <-t.C:
			}
		}
		res, retryable, err := b.post(ctx, body, tr.Timeout <= 0)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if !retryable || ctx.Err() != nil {
			break
		}
	}
	return storm.Result{}, lastErr
}

// post performs one round trip. retryable marks transport-level
// failures (no HTTP response reached us); a server-reported error is
// authoritative and returned as-is. applyRequestTimeout is false when
// the trial carries its own deadline (already on ctx) — per the
// BackendOptions contract, RequestTimeout only fills that gap.
func (b *Backend) post(ctx context.Context, body []byte, applyRequestTimeout bool) (storm.Result, bool, error) {
	if applyRequestTimeout && b.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.opts.RequestTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/run", bytes.NewReader(body))
	if err != nil {
		return storm.Result{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.c.Do(req)
	if err != nil {
		return storm.Result{}, true, fmt.Errorf("remote: %s: %w", b.base, err)
	}
	defer resp.Body.Close()
	var rr RunResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&rr); err != nil {
		return storm.Result{}, true, fmt.Errorf("remote: %s: decoding response (HTTP %d): %w", b.base, resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		msg := rr.Error
		if msg == "" {
			msg = "no error message"
		}
		return storm.Result{}, false, fmt.Errorf("remote: %s: HTTP %d: %s", b.base, resp.StatusCode, msg)
	}
	if rr.Result == nil {
		return storm.Result{}, false, fmt.Errorf("remote: %s: HTTP 200 with no result", b.base)
	}
	return *rr.Result, false, nil
}
