package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"stormtune/internal/core"
	"stormtune/internal/storm"
)

// BackendOptions configure a remote backend client.
type BackendOptions struct {
	// HTTPClient overrides the default client (connection pooling makes
	// the default fine for concurrent trials; override for custom
	// transports or TLS).
	HTTPClient *http.Client
	// Auth carries the bearer token sent on /run and /info. Leave zero
	// for open workers.
	Auth Credentials
	// Transport bundles request timeout and transport retry knobs; see
	// the Transport type.
	Transport Transport
}

// Backend is the client side of a remote evaluation service: a
// core.Backend that runs each trial by POSTing it to a Server (e.g. a
// `stormtune serve` worker process). It is safe for concurrent trials
// — RunAsync can keep several requests in flight against one worker,
// or combine several Backends with core.NewPoolBackend to spread trials
// over a worker pool.
type Backend struct {
	base string
	c    *http.Client
	opts BackendOptions

	mu sync.Mutex
	// served caches the fingerprint set from the last successful Info
	// call, letting the pool route without a network round trip.
	served []string
}

// NewBackend builds a client for the server at baseURL (e.g.
// "http://127.0.0.1:8077").
func NewBackend(baseURL string, opts BackendOptions) *Backend {
	c := opts.HTTPClient
	if c == nil {
		c = &http.Client{}
	}
	if opts.Transport.Backoff <= 0 {
		opts.Transport.Backoff = 100 * time.Millisecond
	}
	return &Backend{base: strings.TrimRight(baseURL, "/"), c: c, opts: opts}
}

// URL returns the server base URL this client talks to.
func (b *Backend) URL() string { return b.base }

// Fingerprints returns the served fingerprint set cached by the last
// successful Info call (nil before the first).
func (b *Backend) Fingerprints() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.served...)
}

// Serves reports whether the worker's cached registry covers the
// fingerprint (empty matches a single-topology worker, mirroring the
// server's routing shortcut).
func (b *Backend) Serves(fingerprint string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if fingerprint == "" {
		return len(b.served) == 1
	}
	for _, fp := range b.served {
		if fp == fingerprint {
			return true
		}
	}
	return false
}

// Info fetches the worker's description — every topology it serves plus
// its live load — and refreshes the cached fingerprint set.
func (b *Backend) Info(ctx context.Context) (Info, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/info", nil)
	if err != nil {
		return Info{}, err
	}
	b.authorize(req)
	resp, err := b.c.Do(req)
	if err != nil {
		return Info{}, &TransportError{URL: b.base, Err: fmt.Errorf("remote: info %s: %w", b.base, err)}
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusUnauthorized {
		return Info{}, &AuthError{URL: b.base, Detail: "info rejected"}
	}
	if resp.StatusCode != http.StatusOK {
		return Info{}, fmt.Errorf("remote: info %s: HTTP %d", b.base, resp.StatusCode)
	}
	var info Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return Info{}, fmt.Errorf("remote: info %s: %w", b.base, err)
	}
	b.mu.Lock()
	b.served = info.Fingerprints()
	b.mu.Unlock()
	return info, nil
}

// CheckHealth probes the worker by refetching /info, refreshing the
// cached fingerprint set as a side effect. The pool uses it to re-probe
// evicted members before readmitting them.
func (b *Backend) CheckHealth(ctx context.Context) error {
	_, err := b.Info(ctx)
	return err
}

func (b *Backend) authorize(req *http.Request) {
	if b.opts.Auth.Token != "" {
		req.Header.Set("Authorization", "Bearer "+b.opts.Auth.Token)
	}
}

// Run implements core.Backend: serialize the trial, POST it, decode the
// measurement. Transport failures are retried per the options; any
// error that survives is a lost evaluation for the session's
// RetryPolicy to handle — except the typed permanent/overloaded errors,
// which the session and pool recognize and handle without burning
// retry budget.
func (b *Backend) Run(ctx context.Context, tr core.Trial) (storm.Result, error) {
	body, err := json.Marshal(RunRequest{
		Trial: TrialMeta{
			ID:        tr.ID,
			RunIndex:  tr.RunIndex,
			Attempt:   tr.Attempt,
			TimeoutMS: int64(tr.Timeout / time.Millisecond),
		},
		Config:      tr.Config,
		Fingerprint: tr.Fingerprint,
	})
	if err != nil {
		return storm.Result{}, fmt.Errorf("remote: encoding trial %d: %w", tr.ID, err)
	}

	var lastErr error
	for try := 0; try <= b.opts.Transport.Retries; try++ {
		if try > 0 {
			backoff := b.opts.Transport.Backoff << (try - 1)
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				return storm.Result{}, ctx.Err()
			case <-t.C:
			}
		}
		res, retryable, err := b.post(ctx, body, tr.Timeout <= 0)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if !retryable || ctx.Err() != nil {
			return storm.Result{}, lastErr
		}
	}
	// The transport retry budget is spent without ever reaching the
	// server: surface that as unreachability for pool health tracking.
	return storm.Result{}, &TransportError{URL: b.base, Err: lastErr}
}

// post performs one round trip. retryable marks transport-level
// failures (no HTTP response reached us); a server-reported error is
// authoritative and returned as-is — mapped to its typed form where the
// status and code identify one. applyRequestTimeout is false when the
// trial carries its own deadline (already on ctx) — per the Transport
// contract, RequestTimeout only fills that gap.
func (b *Backend) post(ctx context.Context, body []byte, applyRequestTimeout bool) (storm.Result, bool, error) {
	if applyRequestTimeout && b.opts.Transport.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.opts.Transport.RequestTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/run", bytes.NewReader(body))
	if err != nil {
		return storm.Result{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	b.authorize(req)
	resp, err := b.c.Do(req)
	if err != nil {
		return storm.Result{}, true, fmt.Errorf("remote: %s: %w", b.base, err)
	}
	defer resp.Body.Close()
	var rr RunResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&rr); err != nil {
		return storm.Result{}, true, fmt.Errorf("remote: %s: decoding response (HTTP %d): %w", b.base, resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		return storm.Result{}, false, b.responseError(resp, rr)
	}
	if rr.Result == nil {
		return storm.Result{}, false, fmt.Errorf("remote: %s: HTTP 200 with no result", b.base)
	}
	return *rr.Result, false, nil
}

// responseError maps a decoded non-2xx reply to its typed error where
// the protocol defines one, falling back to a generic message.
func (b *Backend) responseError(resp *http.Response, rr RunResponse) error {
	msg := rr.Error
	if msg == "" {
		msg = "no error message"
	}
	switch {
	case resp.StatusCode == http.StatusUnauthorized || rr.Code == CodeAuth:
		return &AuthError{URL: b.base, Detail: msg}
	case rr.Code == CodeUnknownFingerprint:
		// Want is filled by the caller that knows the trial; here we only
		// know what the worker serves.
		return &UnknownFingerprintError{URL: b.base, Served: rr.Served}
	case resp.StatusCode == http.StatusTooManyRequests || rr.Code == CodeOverloaded:
		retryAfter := time.Duration(0)
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
		return &OverloadedError{
			URL:        b.base,
			QueueDepth: rr.QueueDepth,
			EstWait:    time.Duration(rr.EstWaitMS) * time.Millisecond,
			RetryAfter: retryAfter,
		}
	}
	return fmt.Errorf("remote: %s: HTTP %d: %s", b.base, resp.StatusCode, msg)
}
