package remote

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"stormtune/internal/cluster"
	"stormtune/internal/core"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

func testTopo() *topo.Topology {
	return topo.MustNew("t",
		[]topo.Node{
			{Name: "s", Kind: topo.Spout, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
			{Name: "a", Kind: topo.Bolt, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
			{Name: "b", Kind: topo.Bolt, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
		},
		[]topo.Edge{{From: 0, To: 1}, {From: 1, To: 2}},
	)
}

func testEval(t *topo.Topology) *storm.FluidSim {
	spec := cluster.Spec{Machines: 8, CoresPerMachine: 4, CoreMillisPerSec: 1000,
		NICBytesPerSec: 128e6, TaskSlotsPerMachine: 16, ThrashTasksPerCore: 4}
	f := storm.NewFluidSim(t, spec, storm.SinkTuples, 1)
	f.Noise = storm.NoNoise()
	return f
}

func testBO(t *topo.Topology, seed int64) core.Strategy {
	return core.NewBO(t, cluster.Small(), storm.DefaultSyntheticConfig(t, 1), core.BOOptions{Seed: seed})
}

// startServer brings up a live local evaluation server (real TCP
// listener) the way `stormtune serve` does, and returns a client.
func startServer(t *testing.T, opts ServerOptions) (*Backend, *httptest.Server) {
	t.Helper()
	tp := testTopo()
	if opts.Info == (Info{}) {
		opts.Info = Info{Topology: tp.Name, Nodes: tp.N(), Metric: storm.SinkTuples.String()}
	}
	srv := httptest.NewServer(NewServer(core.AsBackend(testEval(tp)), opts).Handler())
	t.Cleanup(srv.Close)
	return NewBackend(srv.URL, BackendOptions{}), srv
}

// TestRunRoundTrip: a trial evaluated over the wire returns exactly the
// measurement the simulator produces locally — the remote backend is
// transparent, noise draw included.
func TestRunRoundTrip(t *testing.T) {
	tp := testTopo()
	bk, _ := startServer(t, ServerOptions{})
	local := testEval(tp)

	cfg := storm.DefaultSyntheticConfig(tp, 3)
	for runIndex := 1; runIndex <= 3; runIndex++ {
		want := local.Run(cfg, runIndex)
		got, err := bk.Run(context.Background(), core.Trial{ID: runIndex, Config: cfg, RunIndex: runIndex, Attempt: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got.Throughput != want.Throughput || got.Failed != want.Failed || got.Bottleneck != want.Bottleneck {
			t.Fatalf("run %d over the wire = %+v, local = %+v", runIndex, got, want)
		}
	}
}

// TestInfo: the client can verify what the worker serves.
func TestInfo(t *testing.T) {
	bk, _ := startServer(t, ServerOptions{})
	info, err := bk.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Topology != "t" || info.Nodes != 3 {
		t.Fatalf("info = %+v", info)
	}
}

// TestServerRejectsWrongTopology: a config sized for a different
// topology is rejected before evaluation with a clear error.
func TestServerRejectsWrongTopology(t *testing.T) {
	bk, _ := startServer(t, ServerOptions{})
	cfg := storm.DefaultSyntheticConfig(testTopo(), 1)
	cfg.Hints = cfg.Hints[:2] // wrong operator count
	_, err := bk.Run(context.Background(), core.Trial{ID: 1, Config: cfg, RunIndex: 1, Attempt: 1})
	if err == nil {
		t.Fatal("mismatched config accepted")
	}
}

// TestInjectedFaultSurfacesAsLostEvaluation: a 500 from the server is
// an error (lost measurement), not a zero observation.
func TestInjectedFaultSurfacesAsLostEvaluation(t *testing.T) {
	tp := testTopo()
	bk, _ := startServer(t, ServerOptions{FailEveryN: 1}) // every request fails
	cfg := storm.DefaultSyntheticConfig(tp, 1)
	_, err := bk.Run(context.Background(), core.Trial{ID: 1, Config: cfg, RunIndex: 1, Attempt: 1})
	if err == nil {
		t.Fatal("injected fault did not surface as an error")
	}
}

// TestTransportRetryAfterServerRestart: connection-level failures are
// re-POSTed by the client itself (the evaluation is pure), so a worker
// hiccup shorter than the transport retry budget is invisible.
func TestTransportRetryAfterConnectionRefused(t *testing.T) {
	tp := testTopo()
	srv := httptest.NewServer(NewServer(core.AsBackend(testEval(tp)), ServerOptions{}).Handler())
	url := srv.URL
	srv.Close() // connection refused now
	bk := NewBackend(url, BackendOptions{TransportRetries: 2, TransportBackoff: 10 * time.Millisecond})
	cfg := storm.DefaultSyntheticConfig(tp, 1)
	start := time.Now()
	_, err := bk.Run(context.Background(), core.Trial{ID: 1, Config: cfg, RunIndex: 1, Attempt: 1})
	if err == nil {
		t.Fatal("dead server produced a result")
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("transport retries not attempted (returned in %v)", d)
	}
}

// blockingBackend ignores ctx mid-run the way the simulators do,
// holding the evaluation until released.
type blockingBackend struct{ release chan struct{} }

func (b *blockingBackend) Run(ctx context.Context, tr core.Trial) (storm.Result, error) {
	<-b.release
	return storm.Result{Throughput: 1}, nil
}

// TestServerAbandonsRunAtDeadline: a trial deadline is enforced by the
// server even when the backend cannot observe ctx mid-run — the reply
// is a 504-style lost evaluation instead of a worker held hostage.
func TestServerAbandonsRunAtDeadline(t *testing.T) {
	blocked := &blockingBackend{release: make(chan struct{})}
	defer close(blocked.release)
	srv := httptest.NewServer(NewServer(blocked, ServerOptions{MaxRunSeconds: 1}).Handler())
	t.Cleanup(srv.Close)
	bk := NewBackend(srv.URL, BackendOptions{})
	tp := testTopo()
	cfg := storm.DefaultSyntheticConfig(tp, 1)
	start := time.Now()
	_, err := bk.Run(context.Background(), core.Trial{
		ID: 1, Config: cfg, RunIndex: 1, Attempt: 1, Timeout: 50 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("deadline-exceeding run returned a result")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("server held the response %v past the 50ms trial deadline", d)
	}
}

// TestEndToEndConcurrentRetries: a session drives two concurrent
// trials through one RemoteBackend against a live local server whose
// fault injection kills requests mid-flight; the RetryPolicy absorbs
// every fault (TrialFailed → TrialRetried, observed) and the session
// completes its full budget with no evaluation-failure records.
func TestEndToEndConcurrentRetries(t *testing.T) {
	tp := testTopo()
	const steps = 10
	bk, _ := startServer(t, ServerOptions{FailEveryN: 4})

	var mu sync.Mutex
	var failed, retried, permanent int
	obs := core.ObserverFunc(func(e core.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch ev := e.(type) {
		case core.TrialFailed:
			failed++
			if ev.Permanent {
				permanent++
			}
		case core.TrialRetried:
			retried++
		}
	})
	sess := core.NewSession(testBO(tp, 3), bk, core.SessionOptions{
		MaxSteps: steps,
		Retry:    core.RetryPolicy{MaxAttempts: 4, Backoff: time.Millisecond},
		Observer: obs,
	})
	res, err := sess.RunAsync(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != steps {
		t.Fatalf("completed %d records, want %d", len(res.Records), steps)
	}
	if failed == 0 || retried == 0 {
		t.Fatalf("fault injection unobserved: failed=%d retried=%d", failed, retried)
	}
	if permanent != 0 {
		t.Fatalf("%d trials failed permanently; MaxAttempts 4 must absorb every-4th faults", permanent)
	}
	for _, rec := range res.Records {
		if rec.Result.Failure == storm.FailureEvaluation {
			t.Fatalf("retry budget should have absorbed every injected fault: %+v", rec.Result)
		}
	}
	if _, ok := res.Best(); !ok {
		t.Fatal("no successful trial over the wire")
	}
}

// TestEndToEndSnapshotResumeBitIdentical is the acceptance scenario's
// second half: a remote tuning session over a flaky live server is
// snapshotted mid-run and cancelled; a "new process" resumes it with a
// fresh client against the same server, and the stitched records are
// bit-identical to an uninterrupted run against the local simulator —
// retries re-use the trial's RunIndex, so lost-then-recovered
// measurements change nothing.
func TestEndToEndSnapshotResumeBitIdentical(t *testing.T) {
	tp := testTopo()
	const steps = 12

	// Reference: uninterrupted local sequential run.
	want := core.Tune(testEval(tp), testBO(tp, 3), steps, 0, 0)

	bk, _ := startServer(t, ServerOptions{FailEveryN: 5})
	var mu sync.Mutex
	var completed, failed int
	var snap *core.SessionState
	ctx, cancel := context.WithCancel(context.Background())
	var sess *core.Session
	obs := core.ObserverFunc(func(e core.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch e.(type) {
		case core.TrialFailed:
			failed++
		case core.TrialCompleted:
			completed++
			if completed == steps/2 {
				snap = sess.Snapshot()
				cancel()
			}
		}
	})
	sess = core.NewSession(testBO(tp, 3), bk, core.SessionOptions{
		MaxSteps: steps,
		Retry:    core.RetryPolicy{MaxAttempts: 4, Backoff: time.Millisecond},
		Observer: obs,
	})
	if _, err := sess.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("first half: err = %v, want context.Canceled", err)
	}
	if snap == nil {
		t.Fatal("snapshot never taken")
	}
	if failed == 0 {
		t.Fatal("fault injection unobserved in first half")
	}

	// "New process": fresh client against the same live server.
	bk2 := NewBackend(bk.URL(), BackendOptions{})
	resumed, err := core.ResumeSession(snap, testBO(tp, 3), bk2, core.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("resumed run completed %d records, want %d", len(got.Records), len(want.Records))
	}
	for i, w := range want.Records {
		g := got.Records[i]
		if g.Step != w.Step || g.Config.Fingerprint() != w.Config.Fingerprint() {
			t.Fatalf("step %d config diverged", w.Step)
		}
		if g.Result.Throughput != w.Result.Throughput {
			t.Fatalf("step %d throughput %v, want %v (bit-identical resume)", w.Step, g.Result.Throughput, w.Result.Throughput)
		}
	}
	if got.BestStep != want.BestStep {
		t.Fatalf("best step %d, want %d", got.BestStep, want.BestStep)
	}
}
