package remote

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"stormtune/internal/cluster"
	"stormtune/internal/core"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

func testTopo() *topo.Topology {
	return topo.MustNew("t",
		[]topo.Node{
			{Name: "s", Kind: topo.Spout, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
			{Name: "a", Kind: topo.Bolt, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
			{Name: "b", Kind: topo.Bolt, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
		},
		[]topo.Edge{{From: 0, To: 1}, {From: 1, To: 2}},
	)
}

// testTopo2 is structurally different from testTopo, so the two have
// distinct fingerprints — the multi-tenant routing key.
func testTopo2() *topo.Topology {
	return topo.MustNew("u",
		[]topo.Node{
			{Name: "s", Kind: topo.Spout, TimeUnits: 10, Selectivity: 1, TupleBytes: 80},
			{Name: "a", Kind: topo.Bolt, TimeUnits: 40, Selectivity: 1, TupleBytes: 80},
		},
		[]topo.Edge{{From: 0, To: 1}},
	)
}

func fp(tp *topo.Topology) string { return fmt.Sprintf("%016x", tp.Fingerprint()) }

func testEval(t *topo.Topology) *storm.FluidSim {
	spec := cluster.Spec{Machines: 8, CoresPerMachine: 4, CoreMillisPerSec: 1000,
		NICBytesPerSec: 128e6, TaskSlotsPerMachine: 16, ThrashTasksPerCore: 4}
	f := storm.NewFluidSim(t, spec, storm.SinkTuples, 1)
	f.Noise = storm.NoNoise()
	return f
}

func testBO(t *topo.Topology, seed int64) core.Strategy {
	return core.NewBO(t, cluster.Small(), storm.DefaultSyntheticConfig(t, 1), core.BOOptions{Seed: seed})
}

func infoFor(tp *topo.Topology) TopologyInfo {
	return TopologyInfo{Topology: tp.Name, Nodes: tp.N(), Metric: storm.SinkTuples.String(), Fingerprint: fp(tp)}
}

// startServer brings up a live local evaluation server (real TCP
// listener) serving testTopo the way `stormtune serve` does, and
// returns a client built with copts.
func startServer(t *testing.T, sopts ServerOptions, copts BackendOptions) (*Backend, *httptest.Server) {
	t.Helper()
	tp := testTopo()
	srv := httptest.NewServer(NewSingleServer(core.AsBackend(testEval(tp)), infoFor(tp), sopts).Handler())
	t.Cleanup(srv.Close)
	return NewBackend(srv.URL, copts), srv
}

// TestRunRoundTrip: a trial evaluated over the wire returns exactly the
// measurement the simulator produces locally — the remote backend is
// transparent, noise draw included. The trial carries no fingerprint:
// a single-topology worker accepts it (the single-tenant shortcut).
func TestRunRoundTrip(t *testing.T) {
	tp := testTopo()
	bk, _ := startServer(t, ServerOptions{}, BackendOptions{})
	local := testEval(tp)

	cfg := storm.DefaultSyntheticConfig(tp, 3)
	for runIndex := 1; runIndex <= 3; runIndex++ {
		want := local.Run(cfg, runIndex)
		got, err := bk.Run(context.Background(), core.Trial{ID: runIndex, Config: cfg, RunIndex: runIndex, Attempt: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got.Throughput != want.Throughput || got.Failed != want.Failed || got.Bottleneck != want.Bottleneck {
			t.Fatalf("run %d over the wire = %+v, local = %+v", runIndex, got, want)
		}
	}
}

// TestInfo: the client can verify what the worker serves, and Info
// primes the served-fingerprint cache routing consults.
func TestInfo(t *testing.T) {
	bk, _ := startServer(t, ServerOptions{}, BackendOptions{})
	info, err := bk.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Topologies) != 1 || info.Topologies[0].Topology != "t" || info.Topologies[0].Nodes != 3 {
		t.Fatalf("info = %+v", info)
	}
	if info.AuthRequired {
		t.Fatal("open server advertises auth")
	}
	if !bk.Serves(fp(testTopo())) {
		t.Fatal("Info did not prime the served-fingerprint cache")
	}
}

// TestMultiTenantRouting: one worker serves two topologies; /run routes
// each trial to the registered backend by fingerprint, and a
// fingerprint-less trial is ambiguous (no single-tenant shortcut).
func TestMultiTenantRouting(t *testing.T) {
	t1, t2 := testTopo(), testTopo2()
	if fp(t1) == fp(t2) {
		t.Fatal("test topologies must have distinct fingerprints")
	}
	s := NewServer(ServerOptions{})
	if err := s.Register(infoFor(t1), core.AsBackend(testEval(t1))); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(infoFor(t2), core.AsBackend(testEval(t2))); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(infoFor(t2), core.AsBackend(testEval(t2))); err == nil {
		t.Fatal("duplicate fingerprint registration accepted")
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	bk := NewBackend(srv.URL, BackendOptions{})

	for _, tc := range []struct {
		tp *topo.Topology
	}{{t1}, {t2}} {
		cfg := storm.DefaultSyntheticConfig(tc.tp, 2)
		want := testEval(tc.tp).Run(cfg, 1)
		got, err := bk.Run(context.Background(), core.Trial{
			ID: 1, Config: cfg, RunIndex: 1, Attempt: 1, Fingerprint: fp(tc.tp),
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.tp.Name, err)
		}
		if got.Throughput != want.Throughput {
			t.Fatalf("%s routed to the wrong backend: got %v, want %v", tc.tp.Name, got.Throughput, want.Throughput)
		}
	}

	// Ambiguous: two topologies served, no fingerprint on the trial.
	cfg := storm.DefaultSyntheticConfig(t1, 2)
	_, err := bk.Run(context.Background(), core.Trial{ID: 2, Config: cfg, RunIndex: 1, Attempt: 1})
	var ufe *UnknownFingerprintError
	if !errors.As(err, &ufe) {
		t.Fatalf("fingerprint-less trial on a multi-topology worker: err = %v, want UnknownFingerprintError", err)
	}
}

// TestUnknownFingerprintIsPermanent: a trial routed to a worker that
// does not serve its topology comes back as a typed, permanent error
// listing what the worker does serve.
func TestUnknownFingerprintIsPermanent(t *testing.T) {
	bk, _ := startServer(t, ServerOptions{}, BackendOptions{})
	cfg := storm.DefaultSyntheticConfig(testTopo(), 1)
	_, err := bk.Run(context.Background(), core.Trial{
		ID: 1, Config: cfg, RunIndex: 1, Attempt: 1, Fingerprint: "00000000deadbeef",
	})
	var ufe *UnknownFingerprintError
	if !errors.As(err, &ufe) {
		t.Fatalf("err = %v, want UnknownFingerprintError", err)
	}
	if !ufe.Permanent() {
		t.Fatal("unknown-fingerprint errors must be permanent (no retry burn)")
	}
	if len(ufe.Served) != 1 || ufe.Served[0] != fp(testTopo()) {
		t.Fatalf("Served = %v, want the worker's fingerprint set", ufe.Served)
	}
}

// TestAuthRejection: a server started with a token rejects tokenless
// and wrong-token requests with a typed, permanent AuthError on both
// /run and /info, while the right token and the open /healthz work.
func TestAuthRejection(t *testing.T) {
	tp := testTopo()
	srv := httptest.NewServer(NewSingleServer(core.AsBackend(testEval(tp)), infoFor(tp),
		ServerOptions{Auth: Credentials{Token: "s3cret"}}).Handler())
	t.Cleanup(srv.Close)

	cfg := storm.DefaultSyntheticConfig(tp, 1)
	for name, bad := range map[string]*Backend{
		"no token":    NewBackend(srv.URL, BackendOptions{}),
		"wrong token": NewBackend(srv.URL, BackendOptions{Auth: Credentials{Token: "nope"}}),
	} {
		var ae *AuthError
		if _, err := bad.Run(context.Background(), core.Trial{ID: 1, Config: cfg, RunIndex: 1, Attempt: 1}); !errors.As(err, &ae) {
			t.Fatalf("%s /run: err = %v, want AuthError", name, err)
		}
		if !ae.Permanent() {
			t.Fatalf("%s: auth errors must be permanent", name)
		}
		if _, err := bad.Info(context.Background()); !errors.As(err, &ae) {
			t.Fatalf("%s /info: err = %v, want AuthError", name, err)
		}
	}

	good := NewBackend(srv.URL, BackendOptions{Auth: Credentials{Token: "s3cret"}})
	info, err := good.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !info.AuthRequired {
		t.Fatal("authed server must advertise AuthRequired")
	}
	if _, err := good.Run(context.Background(), core.Trial{ID: 1, Config: cfg, RunIndex: 1, Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	if err := good.CheckHealth(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestAuthFailureBurnsNoRetries: a session pointed at a worker it
// cannot authenticate to fails each trial immediately — one attempt,
// zero TrialRetried events — instead of burning its whole retry budget
// on a failure that cannot heal.
func TestAuthFailureBurnsNoRetries(t *testing.T) {
	tp := testTopo()
	srv := httptest.NewServer(NewSingleServer(core.AsBackend(testEval(tp)), infoFor(tp),
		ServerOptions{Auth: Credentials{Token: "s3cret"}}).Handler())
	t.Cleanup(srv.Close)
	bk := NewBackend(srv.URL, BackendOptions{}) // no token

	var mu sync.Mutex
	var retried, permanent int
	var attempts []int
	obs := core.ObserverFunc(func(e core.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch ev := e.(type) {
		case core.TrialRetried:
			retried++
		case core.TrialFailed:
			if ev.Permanent {
				permanent++
				attempts = append(attempts, ev.Attempt)
			}
		}
	})
	sess := core.NewSession(testBO(tp, 3), bk, core.SessionOptions{
		MaxSteps: 3,
		Retry:    core.RetryPolicy{MaxAttempts: 5, Backoff: time.Millisecond},
		Observer: obs,
	})
	if _, err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if retried != 0 {
		t.Fatalf("%d TrialRetried events; auth failures must not burn the retry budget", retried)
	}
	if permanent != 3 {
		t.Fatalf("%d permanent failures, want all 3 trials", permanent)
	}
	for _, a := range attempts {
		if a != 1 {
			t.Fatalf("permanent failure after %d attempts, want 1", a)
		}
	}
}

// TestAdmissionRefusal: a worker at capacity refuses with structured
// backpressure — 429, queue depth, estimated wait, Retry-After — typed
// as OverloadedError, and the refused run never touches the backend.
func TestAdmissionRefusal(t *testing.T) {
	tp := testTopo()
	blocked := &blockingBackend{release: make(chan struct{})}
	srv := httptest.NewServer(NewSingleServer(blocked, infoFor(tp),
		ServerOptions{Admission: Admission{MaxConcurrent: 1}}).Handler())
	t.Cleanup(srv.Close)
	bk := NewBackend(srv.URL, BackendOptions{})
	cfg := storm.DefaultSyntheticConfig(tp, 1)

	// Occupy the only slot.
	done := make(chan struct{})
	go func() {
		defer close(done)
		bk.Run(context.Background(), core.Trial{ID: 1, Config: cfg, RunIndex: 1, Attempt: 1})
	}()
	t.Cleanup(func() { close(blocked.release); <-done })
	waitInFlight(t, bk, 1)

	_, err := bk.Run(context.Background(), core.Trial{ID: 2, Config: cfg, RunIndex: 1, Attempt: 1})
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want OverloadedError", err)
	}
	if !oe.Overloaded() {
		t.Fatal("OverloadedError must mark itself Overloaded")
	}
	if oe.QueueDepth < 1 {
		t.Fatalf("QueueDepth = %d, want >= 1", oe.QueueDepth)
	}
	if oe.RetryAfterHint() < time.Second {
		t.Fatalf("RetryAfterHint = %v, want the server's >= 1s floor", oe.RetryAfterHint())
	}
}

// waitInFlight polls /info until the worker reports n in-flight runs.
func waitInFlight(t *testing.T, bk *Backend, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		info, err := bk.Info(context.Background())
		if err == nil && info.InFlight >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("worker never reached %d in-flight runs", n)
}

// TestPoolShedsToIdleWorker is the admission-shedding acceptance test:
// with one worker's only slot held by an outside client and a second
// idle worker, every pool trial is re-routed — shed, not queued — to
// the idle worker. The oversubscribed worker records sheds and no
// completions; the idle worker evaluates everything.
func TestPoolShedsToIdleWorker(t *testing.T) {
	tp := testTopo()
	cfg := storm.DefaultSyntheticConfig(tp, 1)

	blocked := &blockingBackend{release: make(chan struct{})}
	busySrv := httptest.NewServer(NewSingleServer(blocked, infoFor(tp),
		ServerOptions{Admission: Admission{MaxConcurrent: 1}}).Handler())
	t.Cleanup(busySrv.Close)
	idleSrv := httptest.NewServer(NewSingleServer(core.AsBackend(testEval(tp)), infoFor(tp), ServerOptions{}).Handler())
	t.Cleanup(idleSrv.Close)

	busy := NewBackend(busySrv.URL, BackendOptions{})
	idle := NewBackend(idleSrv.URL, BackendOptions{})
	for _, bk := range []*Backend{busy, idle} {
		if _, err := bk.Info(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	// An outside client holds the busy worker's only slot for the whole
	// test, so its admission control refuses every pool trial.
	done := make(chan struct{})
	go func() {
		defer close(done)
		busy.Run(context.Background(), core.Trial{ID: 99, Config: cfg, RunIndex: 1, Attempt: 1})
	}()
	t.Cleanup(func() { close(blocked.release); <-done })
	waitInFlight(t, busy, 1)

	pool, err := core.NewPoolBackend(busy, idle)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 3
	for i := 1; i <= trials; i++ {
		res, err := pool.Run(context.Background(), core.Trial{
			ID: i, Config: cfg, RunIndex: i, Attempt: 1, Fingerprint: fp(tp),
		})
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if res.Failed {
			t.Fatalf("trial %d failed: %+v", i, res)
		}
	}

	stats := map[string]core.WorkerStats{}
	for _, ws := range pool.Stats() {
		stats[ws.Worker] = ws
	}
	busyStats, idleStats := stats[busySrv.URL], stats[idleSrv.URL]
	if busyStats.Completed != 0 {
		t.Fatalf("oversubscribed worker completed %d trials, want 0 (shed, not queued)", busyStats.Completed)
	}
	if busyStats.Shed == 0 {
		t.Fatalf("oversubscribed worker shed %d trials, want > 0; stats = %+v", busyStats.Shed, pool.Stats())
	}
	if busyStats.Errors != 0 {
		t.Fatalf("admission refusals counted as %d errors; they are neither errors nor completions", busyStats.Errors)
	}
	if idleStats.Completed != trials {
		t.Fatalf("idle worker completed %d trials, want all %d", idleStats.Completed, trials)
	}
}

// TestServerRejectsWrongTopology: a config sized for a different
// topology is rejected before evaluation with a clear error.
func TestServerRejectsWrongTopology(t *testing.T) {
	bk, _ := startServer(t, ServerOptions{}, BackendOptions{})
	cfg := storm.DefaultSyntheticConfig(testTopo(), 1)
	cfg.Hints = cfg.Hints[:2] // wrong operator count
	_, err := bk.Run(context.Background(), core.Trial{ID: 1, Config: cfg, RunIndex: 1, Attempt: 1})
	if err == nil {
		t.Fatal("mismatched config accepted")
	}
}

// TestInjectedFaultSurfacesAsLostEvaluation: a 500 from the server is
// an error (lost measurement), not a zero observation.
func TestInjectedFaultSurfacesAsLostEvaluation(t *testing.T) {
	tp := testTopo()
	bk, _ := startServer(t, ServerOptions{FailEveryN: 1}, BackendOptions{}) // every request fails
	cfg := storm.DefaultSyntheticConfig(tp, 1)
	_, err := bk.Run(context.Background(), core.Trial{ID: 1, Config: cfg, RunIndex: 1, Attempt: 1})
	if err == nil {
		t.Fatal("injected fault did not surface as an error")
	}
}

// TestTransportRetryAfterConnectionRefused: connection-level failures
// are re-POSTed by the client itself (the evaluation is pure), so a
// worker hiccup shorter than the transport retry budget is invisible.
func TestTransportRetryAfterConnectionRefused(t *testing.T) {
	tp := testTopo()
	srv := httptest.NewServer(NewSingleServer(core.AsBackend(testEval(tp)), infoFor(tp), ServerOptions{}).Handler())
	url := srv.URL
	srv.Close() // connection refused now
	bk := NewBackend(url, BackendOptions{Transport: Transport{Retries: 2, Backoff: 10 * time.Millisecond}})
	cfg := storm.DefaultSyntheticConfig(tp, 1)
	start := time.Now()
	_, err := bk.Run(context.Background(), core.Trial{ID: 1, Config: cfg, RunIndex: 1, Attempt: 1})
	if err == nil {
		t.Fatal("dead server produced a result")
	}
	var te *TransportError
	if !errors.As(err, &te) || !te.Unreachable() {
		t.Fatalf("err = %v, want an Unreachable TransportError", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("transport retries not attempted (returned in %v)", d)
	}
}

// blockingBackend ignores ctx mid-run the way the simulators do,
// holding the evaluation until released.
type blockingBackend struct{ release chan struct{} }

func (b *blockingBackend) Run(ctx context.Context, tr core.Trial) (storm.Result, error) {
	<-b.release
	return storm.Result{Throughput: 1}, nil
}

// TestServerAbandonsRunAtDeadline: a trial deadline is enforced by the
// server even when the backend cannot observe ctx mid-run — the reply
// is a 504-style lost evaluation instead of a worker held hostage.
func TestServerAbandonsRunAtDeadline(t *testing.T) {
	blocked := &blockingBackend{release: make(chan struct{})}
	defer close(blocked.release)
	tp := testTopo()
	srv := httptest.NewServer(NewSingleServer(blocked, infoFor(tp), ServerOptions{MaxRunSeconds: 1}).Handler())
	t.Cleanup(srv.Close)
	bk := NewBackend(srv.URL, BackendOptions{})
	cfg := storm.DefaultSyntheticConfig(tp, 1)
	start := time.Now()
	_, err := bk.Run(context.Background(), core.Trial{
		ID: 1, Config: cfg, RunIndex: 1, Attempt: 1, Timeout: 50 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("deadline-exceeding run returned a result")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("server held the response %v past the 50ms trial deadline", d)
	}
}

// TestEndToEndConcurrentRetries: a session drives two concurrent
// trials through one RemoteBackend against a live local server whose
// fault injection kills requests mid-flight; the RetryPolicy absorbs
// every fault (TrialFailed → TrialRetried, observed) and the session
// completes its full budget with no evaluation-failure records.
func TestEndToEndConcurrentRetries(t *testing.T) {
	tp := testTopo()
	const steps = 10
	bk, _ := startServer(t, ServerOptions{FailEveryN: 4}, BackendOptions{})

	var mu sync.Mutex
	var failed, retried, permanent int
	obs := core.ObserverFunc(func(e core.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch ev := e.(type) {
		case core.TrialFailed:
			failed++
			if ev.Permanent {
				permanent++
			}
		case core.TrialRetried:
			retried++
		}
	})
	sess := core.NewSession(testBO(tp, 3), bk, core.SessionOptions{
		MaxSteps: steps,
		Retry:    core.RetryPolicy{MaxAttempts: 4, Backoff: time.Millisecond},
		Observer: obs,
	})
	res, err := sess.RunAsync(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != steps {
		t.Fatalf("completed %d records, want %d", len(res.Records), steps)
	}
	if failed == 0 || retried == 0 {
		t.Fatalf("fault injection unobserved: failed=%d retried=%d", failed, retried)
	}
	if permanent != 0 {
		t.Fatalf("%d trials failed permanently; MaxAttempts 4 must absorb every-4th faults", permanent)
	}
	for _, rec := range res.Records {
		if rec.Result.Failure == storm.FailureEvaluation {
			t.Fatalf("retry budget should have absorbed every injected fault: %+v", rec.Result)
		}
	}
	if _, ok := res.Best(); !ok {
		t.Fatal("no successful trial over the wire")
	}
}

// TestEndToEndSnapshotResumeBitIdentical is the acceptance scenario's
// second half: a remote tuning session over a flaky live server is
// snapshotted mid-run and cancelled; a "new process" resumes it with a
// fresh client against the same server, and the stitched records are
// bit-identical to an uninterrupted run against the local simulator —
// retries re-use the trial's RunIndex, so lost-then-recovered
// measurements change nothing.
func TestEndToEndSnapshotResumeBitIdentical(t *testing.T) {
	tp := testTopo()
	const steps = 12

	// Reference: uninterrupted local sequential run.
	want := core.Tune(testEval(tp), testBO(tp, 3), steps, 0, 0)

	bk, _ := startServer(t, ServerOptions{FailEveryN: 5}, BackendOptions{})
	var mu sync.Mutex
	var completed, failed int
	var snap *core.SessionState
	ctx, cancel := context.WithCancel(context.Background())
	var sess *core.Session
	obs := core.ObserverFunc(func(e core.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch e.(type) {
		case core.TrialFailed:
			failed++
		case core.TrialCompleted:
			completed++
			if completed == steps/2 {
				snap = sess.Snapshot()
				cancel()
			}
		}
	})
	sess = core.NewSession(testBO(tp, 3), bk, core.SessionOptions{
		MaxSteps: steps,
		Retry:    core.RetryPolicy{MaxAttempts: 4, Backoff: time.Millisecond},
		Observer: obs,
	})
	if _, err := sess.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("first half: err = %v, want context.Canceled", err)
	}
	if snap == nil {
		t.Fatal("snapshot never taken")
	}
	if failed == 0 {
		t.Fatal("fault injection unobserved in first half")
	}

	// "New process": fresh client against the same live server.
	bk2 := NewBackend(bk.URL(), BackendOptions{})
	resumed, err := core.ResumeSession(snap, testBO(tp, 3), bk2, core.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("resumed run completed %d records, want %d", len(got.Records), len(want.Records))
	}
	for i, w := range want.Records {
		g := got.Records[i]
		if g.Step != w.Step || g.Config.Fingerprint() != w.Config.Fingerprint() {
			t.Fatalf("step %d config diverged", w.Step)
		}
		if g.Result.Throughput != w.Result.Throughput {
			t.Fatalf("step %d throughput %v, want %v (bit-identical resume)", w.Step, g.Result.Throughput, w.Result.Throughput)
		}
	}
	if got.BestStep != want.BestStep {
		t.Fatalf("best step %d, want %d", got.BestStep, want.BestStep)
	}
}
