package remote

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"stormtune/internal/core"
	"stormtune/internal/storm"
)

// ServerOptions configure an evaluation server.
type ServerOptions struct {
	// Info is returned by GET /info so clients can cross-check the
	// served topology.
	Info Info
	// FailEveryN, when positive, injects a deterministic fault: every
	// Nth /run request is rejected with HTTP 500 *before* evaluation.
	// Combined with a session RetryPolicy it exercises the retry path
	// end to end — the `stormtune serve -flaky N` flag maps here.
	FailEveryN int
	// MaxRunSeconds caps a single evaluation even when the trial carries
	// no deadline of its own (default 0 = uncapped).
	MaxRunSeconds int
	// Logf, when set, receives one line per handled request.
	Logf func(format string, args ...any)
}

// Server serves a Backend over HTTP. It is safe for concurrent
// requests as long as the backend is (the contract requires it).
type Server struct {
	bk   core.Backend
	opts ServerOptions
	reqs atomic.Int64
}

// NewServer wraps a backend for serving.
func NewServer(bk core.Backend, opts ServerOptions) *Server {
	return &Server{bk: bk, opts: opts}
}

// Handler returns the HTTP surface: POST /run, GET /info, GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("GET /info", s.handleInfo)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.opts.Info)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	n := s.reqs.Add(1)
	if f := int64(s.opts.FailEveryN); f > 0 && n%f == 0 {
		s.logf("run #%d: injected fault", n)
		writeJSON(w, http.StatusInternalServerError, RunResponse{Error: "injected fault"})
		return
	}
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, RunResponse{Error: "decoding run request: " + err.Error()})
		return
	}
	if want := s.opts.Info.Nodes; want > 0 && len(req.Config.Hints) != want {
		writeJSON(w, http.StatusBadRequest, RunResponse{
			Error: fmt.Sprintf("config has %d hints, served topology %q has %d operators",
				len(req.Config.Hints), s.opts.Info.Topology, want),
		})
		return
	}

	ctx := r.Context()
	timeout := time.Duration(req.Trial.TimeoutMS) * time.Millisecond
	if cap := time.Duration(s.opts.MaxRunSeconds) * time.Second; cap > 0 && (timeout <= 0 || timeout > cap) {
		timeout = cap
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	tr := core.Trial{
		ID:       req.Trial.ID,
		Config:   req.Config,
		RunIndex: req.Trial.RunIndex,
		Attempt:  req.Trial.Attempt,
		Timeout:  timeout,
	}
	// Evaluate on a separate goroutine so a backend that cannot observe
	// ctx mid-run (the simulators run to completion) still cannot hold
	// the response past the deadline: the reply is abandoned at the
	// deadline and the stray evaluation finishes in the background, its
	// result discarded (the buffered channel keeps it from leaking).
	type outcome struct {
		res storm.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := s.bk.Run(ctx, tr)
		ch <- outcome{res: res, err: err}
	}()
	var o outcome
	select {
	case o = <-ch:
	case <-ctx.Done():
		s.logf("run #%d: trial %d attempt %d abandoned: %v", n, tr.ID, tr.Attempt, ctx.Err())
		writeJSON(w, http.StatusGatewayTimeout, RunResponse{Error: "evaluation abandoned: " + ctx.Err().Error()})
		return
	}
	if o.err != nil {
		s.logf("run #%d: trial %d attempt %d failed: %v", n, tr.ID, tr.Attempt, o.err)
		writeJSON(w, http.StatusBadGateway, RunResponse{Error: o.err.Error()})
		return
	}
	res := o.res
	s.logf("run #%d: trial %d attempt %d → %.0f tuples/s", n, tr.ID, tr.Attempt, res.Throughput)
	writeJSON(w, http.StatusOK, RunResponse{Result: &res})
}
