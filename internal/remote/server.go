package remote

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stormtune/internal/core"
	"stormtune/internal/storm"
)

// Admission is the server-side admission control policy: instead of
// letting an oversubscribed worker queue requests blindly at the TCP
// layer, runs beyond MaxConcurrent are refused immediately with a
// structured backpressure signal (HTTP 429, queue depth, estimated
// wait, Retry-After) that the client pool consumes to shed the trial
// to a less-loaded worker.
type Admission struct {
	// MaxConcurrent caps the evaluations running at once; 0 disables
	// admission control (every run is admitted).
	MaxConcurrent int
}

// ServerOptions configure an evaluation server.
type ServerOptions struct {
	// Auth, when its Token is non-empty, gates /run and /info behind
	// `Authorization: Bearer <token>`; /healthz stays open so load
	// balancers and pool re-probes work without credentials.
	Auth Credentials
	// Admission bounds concurrent evaluations; see Admission.
	Admission Admission
	// FailEveryN, when positive, injects a deterministic fault: every
	// Nth /run request is rejected with HTTP 500 *before* evaluation.
	// Combined with a session RetryPolicy it exercises the retry path
	// end to end — the `stormtune serve -flaky N` flag maps here.
	FailEveryN int
	// MaxRunSeconds caps a single evaluation even when the trial carries
	// no deadline of its own (default 0 = uncapped).
	MaxRunSeconds int
	// Logf, when set, receives one line per handled request.
	Logf func(format string, args ...any)
}

// registration is one served topology: its description and the backend
// that measures it.
type registration struct {
	info TopologyInfo
	bk   core.Backend
}

// Server serves one or more registered topology backends over HTTP,
// routing each POST /run to the registration matching the request's
// fingerprint. It is safe for concurrent requests as long as the
// backends are (the Backend contract requires it).
type Server struct {
	opts ServerOptions
	reqs atomic.Int64

	mu       sync.Mutex
	regs     []registration
	inFlight int
	// avgRunMS is an exponentially weighted mean of evaluation
	// wall-clock, feeding the estimated-wait backpressure signal.
	avgRunMS float64
}

// NewServer builds an empty server; Register adds the topologies it
// serves.
func NewServer(opts ServerOptions) *Server {
	return &Server{opts: opts}
}

// NewSingleServer builds a server serving exactly one topology — the
// common single-tenant worker, one call instead of NewServer+Register.
func NewSingleServer(bk core.Backend, info TopologyInfo, opts ServerOptions) *Server {
	s := NewServer(opts)
	if err := s.Register(info, bk); err != nil {
		// Only a nil backend or duplicate fingerprint can fail; with one
		// registration only the former, a programming error.
		panic(err)
	}
	return s
}

// Register adds a topology to the server's registry. The fingerprint
// is the routing key and must be unique; registering while requests
// are in flight is safe (workers can grow their registry live).
func (s *Server) Register(info TopologyInfo, bk core.Backend) error {
	if bk == nil {
		return fmt.Errorf("remote: registering %q: nil backend", info.Topology)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.regs {
		if r.info.Fingerprint != "" && r.info.Fingerprint == info.Fingerprint {
			return fmt.Errorf("remote: topology fingerprint %s already registered (%q)",
				info.Fingerprint, r.info.Topology)
		}
	}
	s.regs = append(s.regs, registration{info: info, bk: bk})
	return nil
}

// Info describes the server the way GET /info does.
func (s *Server) Info() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := Info{
		InFlight:     s.inFlight,
		Capacity:     s.opts.Admission.MaxConcurrent,
		AuthRequired: s.opts.Auth.Token != "",
	}
	for _, r := range s.regs {
		info.Topologies = append(info.Topologies, r.info)
	}
	return info
}

// Handler returns the HTTP surface: POST /run, GET /info, GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", s.auth(s.handleRun))
	mux.HandleFunc("GET /info", s.auth(s.handleInfo))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// auth wraps a handler behind the bearer-token check; a zero-token
// server passes everything through.
func (s *Server) auth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if token := s.opts.Auth.Token; token != "" {
			got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(token)) != 1 {
				writeJSON(w, http.StatusUnauthorized, RunResponse{
					Error: "missing or wrong bearer token", Code: CodeAuth,
				})
				return
			}
		}
		h(w, r)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Info())
}

// route resolves a request fingerprint against the registry. An empty
// fingerprint is accepted only when exactly one topology is
// registered — the single-tenant shortcut that keeps fingerprint-less
// callers working against dedicated workers.
func (s *Server) route(fingerprint string) (registration, bool, []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	served := make([]string, 0, len(s.regs))
	for _, r := range s.regs {
		served = append(served, r.info.Fingerprint)
	}
	if fingerprint == "" {
		if len(s.regs) == 1 {
			return s.regs[0], true, served
		}
		return registration{}, false, served
	}
	for _, r := range s.regs {
		if r.info.Fingerprint == fingerprint {
			return r, true, served
		}
	}
	return registration{}, false, served
}

// admit reserves an evaluation slot, refusing with a backpressure
// snapshot when the server is at capacity.
func (s *Server) admit() (ok bool, depth int, estWait time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if max := s.opts.Admission.MaxConcurrent; max > 0 && s.inFlight >= max {
		// Estimated wait: the smoothed evaluation duration, scaled by
		// how many admitted runs must finish before a slot frees for
		// this caller (at least one).
		est := time.Duration(s.avgRunMS * float64(time.Millisecond))
		if est <= 0 {
			est = 100 * time.Millisecond
		}
		over := s.inFlight - max + 1
		return false, s.inFlight, est * time.Duration(over)
	}
	s.inFlight++
	return true, s.inFlight, 0
}

// done releases an admitted slot and folds the run's duration into the
// smoothed estimate.
func (s *Server) done(elapsed time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inFlight--
	ms := float64(elapsed) / float64(time.Millisecond)
	if s.avgRunMS == 0 {
		s.avgRunMS = ms
	} else {
		const alpha = 0.2
		s.avgRunMS = (1-alpha)*s.avgRunMS + alpha*ms
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	n := s.reqs.Add(1)
	if f := int64(s.opts.FailEveryN); f > 0 && n%f == 0 {
		s.logf("run #%d: injected fault", n)
		writeJSON(w, http.StatusInternalServerError, RunResponse{Error: "injected fault", Code: CodeEvaluation})
		return
	}
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, RunResponse{
			Error: "decoding run request: " + err.Error(), Code: CodeBadRequest,
		})
		return
	}
	reg, ok, served := s.route(req.Fingerprint)
	if !ok {
		s.logf("run #%d: unknown fingerprint %q", n, req.Fingerprint)
		writeJSON(w, http.StatusNotFound, RunResponse{
			Error:  fmt.Sprintf("no registered topology for fingerprint %q", req.Fingerprint),
			Code:   CodeUnknownFingerprint,
			Served: served,
		})
		return
	}
	if want := reg.info.Nodes; want > 0 && len(req.Config.Hints) != want {
		writeJSON(w, http.StatusBadRequest, RunResponse{
			Error: fmt.Sprintf("config has %d hints, served topology %q has %d operators",
				len(req.Config.Hints), reg.info.Topology, want),
			Code: CodeBadRequest,
		})
		return
	}

	// Admission: refuse past capacity with a structured backpressure
	// signal instead of queueing — the pool sheds to another worker.
	admitted, depth, estWait := s.admit()
	if !admitted {
		retryAfter := int(estWait / time.Second)
		if retryAfter < 1 {
			retryAfter = 1
		}
		s.logf("run #%d: refused at capacity (%d in flight, est. wait %s)", n, depth, estWait)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		writeJSON(w, http.StatusTooManyRequests, RunResponse{
			Error:      fmt.Sprintf("at capacity: %d evaluations in flight", depth),
			Code:       CodeOverloaded,
			QueueDepth: depth,
			EstWaitMS:  int64(estWait / time.Millisecond),
		})
		return
	}
	start := time.Now()
	defer func() { s.done(time.Since(start)) }()

	ctx := r.Context()
	timeout := time.Duration(req.Trial.TimeoutMS) * time.Millisecond
	if cap := time.Duration(s.opts.MaxRunSeconds) * time.Second; cap > 0 && (timeout <= 0 || timeout > cap) {
		timeout = cap
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	tr := core.Trial{
		ID:          req.Trial.ID,
		Config:      req.Config,
		RunIndex:    req.Trial.RunIndex,
		Attempt:     req.Trial.Attempt,
		Timeout:     timeout,
		Fingerprint: req.Fingerprint,
	}
	// Evaluate on a separate goroutine so a backend that cannot observe
	// ctx mid-run (the simulators run to completion) still cannot hold
	// the response past the deadline: the reply is abandoned at the
	// deadline and the stray evaluation finishes in the background, its
	// result discarded (the buffered channel keeps it from leaking).
	type outcome struct {
		res storm.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := reg.bk.Run(ctx, tr)
		ch <- outcome{res: res, err: err}
	}()
	var o outcome
	select {
	case o = <-ch:
	case <-ctx.Done():
		s.logf("run #%d: trial %d attempt %d abandoned: %v", n, tr.ID, tr.Attempt, ctx.Err())
		writeJSON(w, http.StatusGatewayTimeout, RunResponse{
			Error: "evaluation abandoned: " + ctx.Err().Error(), Code: CodeAbandoned,
		})
		return
	}
	if o.err != nil {
		s.logf("run #%d: trial %d attempt %d failed: %v", n, tr.ID, tr.Attempt, o.err)
		writeJSON(w, http.StatusBadGateway, RunResponse{Error: o.err.Error(), Code: CodeEvaluation})
		return
	}
	res := o.res
	s.logf("run #%d [%s]: trial %d attempt %d → %.0f tuples/s", n, reg.info.Topology, tr.ID, tr.Attempt, res.Throughput)
	writeJSON(w, http.StatusOK, RunResponse{Result: &res})
}
