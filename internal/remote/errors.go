package remote

import (
	"fmt"
	"strings"
	"time"
)

// The typed client-side errors below implement small marker interfaces
// the core package recognizes without importing this one:
//
//   - Permanent() bool — retrying this exact request cannot succeed;
//     the session's RetryPolicy fails the trial immediately instead of
//     burning its attempt budget.
//   - Overloaded() bool (+ RetryAfter) — the worker refused the run
//     before evaluating; the pool sheds the trial to another member.
//   - Unreachable() bool — the failure was transport-level (no HTTP
//     reply at all); the pool's health tracking counts it toward
//     eviction.

// AuthError reports a request rejected by bearer-token auth (HTTP
// 401): the token is missing or wrong.
type AuthError struct {
	// URL is the worker base URL.
	URL string
	// Detail is the server's error message.
	Detail string
}

// Error implements error.
func (e *AuthError) Error() string {
	return fmt.Sprintf("remote: %s: unauthorized: %s", e.URL, e.Detail)
}

// Permanent marks the error as unretryable: the same credentials will
// be rejected again.
func (e *AuthError) Permanent() bool { return true }

// UnknownFingerprintError reports a trial routed to a worker that does
// not serve its topology (HTTP 404): the request's fingerprint matched
// no registered topology.
type UnknownFingerprintError struct {
	// URL is the worker base URL.
	URL string
	// Want is the fingerprint the trial asked for (empty when the
	// request carried none and the server serves several topologies).
	Want string
	// Served lists the fingerprints the worker does serve.
	Served []string
}

// Error implements error.
func (e *UnknownFingerprintError) Error() string {
	want := e.Want
	if want == "" {
		want = "(none)"
	}
	return fmt.Sprintf("remote: %s does not serve topology fingerprint %s (serves: %s)",
		e.URL, want, strings.Join(e.Served, ", "))
}

// Permanent marks the error as unretryable against this worker: its
// registry will not change between attempts.
func (e *UnknownFingerprintError) Permanent() bool { return true }

// OverloadedError reports an admission-control refusal (HTTP 429): the
// worker is at capacity and did not start the evaluation. Nothing was
// lost — the trial can run elsewhere immediately, or here after
// RetryAfter.
type OverloadedError struct {
	// URL is the worker base URL.
	URL string
	// QueueDepth is the worker's live evaluation count at refusal.
	QueueDepth int
	// EstWait is the worker's estimate of when a slot frees.
	EstWait time.Duration
	// RetryAfter is the server-suggested wait (the Retry-After header).
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadedError) Error() string {
	return fmt.Sprintf("remote: %s overloaded (%d in flight, est. wait %s, retry after %s)",
		e.URL, e.QueueDepth, e.EstWait, e.RetryAfter)
}

// Overloaded marks the refusal for the pool's shedding path.
func (e *OverloadedError) Overloaded() bool { return true }

// RetryAfterHint exposes the server-suggested wait to the pool without
// it importing this package.
func (e *OverloadedError) RetryAfterHint() time.Duration { return e.RetryAfter }

// TransportError reports a request that never produced an HTTP reply —
// connection refused, reset, broken pipe — after the transport retry
// budget was spent. The worker may be down; the pool's health tracking
// counts these toward eviction.
type TransportError struct {
	// URL is the worker base URL.
	URL string
	// Err is the final transport failure.
	Err error
}

// Error implements error.
func (e *TransportError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *TransportError) Unwrap() error { return e.Err }

// Unreachable marks the failure as transport-level for pool health
// accounting.
func (e *TransportError) Unreachable() bool { return true }
