// Package remote turns backends into a JSON-over-HTTP evaluation
// service and back: Server exposes one or more registered topologies
// (a multi-tenant `stormtune serve` worker process) and Backend is the
// client side — a core.Backend that evaluates trials by POSTing them to
// such a server. One tuning session — or a whole fleet of them — can
// drive a pool of worker processes by combining one client per worker
// with core.NewPoolBackend; the pool routes each trial to a worker
// serving its topology fingerprint.
//
// The wire protocol is deliberately small:
//
//	POST /run     {"trial": {...}, "config": {...}, "fingerprint": "..."}
//	              → {"result": {...}}
//	GET  /info    {"topologies": [...], "inFlight": N, ...}
//	GET  /healthz "ok"
//
// A /run response with a non-2xx status carries {"error": "...",
// "code": "..."}; the code distinguishes losses the session's
// RetryPolicy should absorb (evaluation faults, abandoned runs) from
// conditions retrying cannot fix (bad credentials, a fingerprint the
// worker does not serve) and from admission refusals (HTTP 429 with
// queue depth, estimated wait and Retry-After) that the client pool
// handles by shedding the trial to another worker.
package remote

import (
	"time"

	"stormtune/internal/storm"
)

// Credentials is the bearer-token identity shared by both sides of the
// protocol: a server with a non-empty Token requires `Authorization:
// Bearer <token>` on /run and /info, and a client with one sends it.
// The zero value is an open (unauthenticated) endpoint.
type Credentials struct {
	Token string `json:"token,omitempty"`
}

// Transport bundles the client-side round-trip knobs — one coherent
// struct shared by single-worker backends and worker pools, so every
// member of a pool is configured identically.
type Transport struct {
	// RequestTimeout bounds one HTTP round trip when the trial carries
	// no deadline of its own. Zero leaves the request bounded only by
	// ctx.
	RequestTimeout time.Duration
	// Retries re-POSTs a request whose transport failed — connection
	// refused, reset, broken pipe — up to this many extra times.
	// Evaluations are pure functions of (config, run index), so
	// re-POSTing is safe. Server-reported errors are NOT retried here;
	// surfacing those to the session's RetryPolicy keeps one retry
	// budget, observable via TrialFailed/TrialRetried events.
	Retries int
	// Backoff is the wait between transport retries (default 100ms,
	// doubling per retry).
	Backoff time.Duration
}

// TrialMeta is the trial envelope sent alongside the configuration:
// enough for the server to reproduce the exact measurement (RunIndex
// selects the noise draw) and enforce the trial's deadline.
type TrialMeta struct {
	ID        int   `json:"id"`
	RunIndex  int   `json:"runIndex"`
	Attempt   int   `json:"attempt,omitempty"`
	TimeoutMS int64 `json:"timeoutMs,omitempty"`
}

// RunRequest is the body of POST /run. Fingerprint routes the trial to
// the registered topology it belongs to (topo.Fingerprint in %016x hex,
// stamped onto trials by the session); empty is accepted only by a
// server registering exactly one topology.
type RunRequest struct {
	Trial       TrialMeta    `json:"trial"`
	Config      storm.Config `json:"config"`
	Fingerprint string       `json:"fingerprint,omitempty"`
}

// Machine-readable error codes carried by non-2xx /run replies.
const (
	// CodeAuth: missing or wrong bearer token (HTTP 401). Permanent —
	// retrying with the same credentials cannot succeed.
	CodeAuth = "auth"
	// CodeUnknownFingerprint: the request's fingerprint matches no
	// registered topology (HTTP 404). Permanent for this worker; the
	// reply's Served list names what it does serve.
	CodeUnknownFingerprint = "unknown_fingerprint"
	// CodeOverloaded: admission control refused the run (HTTP 429); the
	// reply carries QueueDepth, EstWaitMS and a Retry-After header. The
	// evaluation never started — shed the trial to another worker or
	// wait, no retry budget is owed.
	CodeOverloaded = "overloaded"
	// CodeBadRequest: malformed body or a config that does not fit the
	// routed topology (HTTP 400).
	CodeBadRequest = "bad_request"
	// CodeEvaluation: the backend lost the measurement (HTTP 502) — the
	// classic case for the session's RetryPolicy.
	CodeEvaluation = "evaluation"
	// CodeAbandoned: the run exceeded the trial deadline and the reply
	// was abandoned (HTTP 504); the session's RetryPolicy decides.
	CodeAbandoned = "abandoned"
)

// RunResponse is the body of a /run reply. Result is set on success
// (HTTP 200); otherwise Error carries the human-readable message and
// Code one of the Code* constants. An overloaded reply additionally
// reports the admission pressure (QueueDepth, EstWaitMS), and an
// unknown-fingerprint reply the Served fingerprint set.
type RunResponse struct {
	Result *storm.Result `json:"result,omitempty"`
	Error  string        `json:"error,omitempty"`
	Code   string        `json:"code,omitempty"`
	// QueueDepth is the number of evaluations the worker is running or
	// admitting right now (CodeOverloaded replies).
	QueueDepth int `json:"queueDepth,omitempty"`
	// EstWaitMS estimates how long until a slot frees, from the
	// worker's smoothed evaluation duration (CodeOverloaded replies).
	EstWaitMS int64 `json:"estWaitMs,omitempty"`
	// Served lists the fingerprints the worker serves
	// (CodeUnknownFingerprint replies).
	Served []string `json:"served,omitempty"`
}

// TopologyInfo describes one registered topology.
type TopologyInfo struct {
	// Topology is the served topology's name.
	Topology string `json:"topology"`
	// Nodes is the topology's operator count; configurations must carry
	// exactly this many hints.
	Nodes int `json:"nodes"`
	// Metric is the throughput definition (storm.Metric.String());
	// empty means the server did not declare it.
	Metric string `json:"metric,omitempty"`
	// Fingerprint is the hex form of topo.Topology.Fingerprint — the
	// full structural hash. Name and node count cannot distinguish two
	// synthetic topologies generated with different seeds; this can,
	// and it is the /run routing key.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// Info describes a worker: every topology it serves, its live load and
// its admission capacity, so clients can verify routing before tuning
// and pools can weigh members.
type Info struct {
	// Topologies lists the registered topologies in registration order.
	Topologies []TopologyInfo `json:"topologies"`
	// InFlight is the number of evaluations running right now.
	InFlight int `json:"inFlight"`
	// Capacity is the admission limit on concurrent evaluations; 0
	// means unlimited (no admission control).
	Capacity int `json:"capacity,omitempty"`
	// AuthRequired reports that /run and /info demand a bearer token
	// (the /info that carried this was itself authenticated).
	AuthRequired bool `json:"authRequired,omitempty"`
}

// Lookup returns the registered topology with the given fingerprint.
func (i Info) Lookup(fingerprint string) (TopologyInfo, bool) {
	for _, t := range i.Topologies {
		if t.Fingerprint == fingerprint {
			return t, true
		}
	}
	return TopologyInfo{}, false
}

// Fingerprints returns the served fingerprint set, in registration
// order.
func (i Info) Fingerprints() []string {
	out := make([]string, 0, len(i.Topologies))
	for _, t := range i.Topologies {
		out = append(out, t.Fingerprint)
	}
	return out
}
