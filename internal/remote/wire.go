// Package remote turns any Backend into a JSON-over-HTTP evaluation
// service and back: Server exposes a backend (typically a wrapped
// simulator, in a `stormtune serve` worker process) and Backend is the
// client side — a core.Backend that evaluates trials by POSTing them to
// such a server. One tuning session can drive a pool of worker
// processes by combining one client per worker with
// core.NewPoolBackend.
//
// The wire protocol is deliberately small:
//
//	POST /run     {"trial": {...}, "config": {...}} → {"result": {...}}
//	GET  /info    {"topology": ..., "nodes": ..., "metric": ...}
//	GET  /healthz "ok"
//
// A /run response with a non-2xx status carries {"error": "..."} and is
// surfaced to the session as a lost evaluation — exactly what the
// session's RetryPolicy exists to absorb.
package remote

import (
	"stormtune/internal/storm"
)

// TrialMeta is the trial envelope sent alongside the configuration:
// enough for the server to reproduce the exact measurement (RunIndex
// selects the noise draw) and enforce the trial's deadline.
type TrialMeta struct {
	ID        int   `json:"id"`
	RunIndex  int   `json:"runIndex"`
	Attempt   int   `json:"attempt,omitempty"`
	TimeoutMS int64 `json:"timeoutMs,omitempty"`
}

// RunRequest is the body of POST /run.
type RunRequest struct {
	Trial  TrialMeta    `json:"trial"`
	Config storm.Config `json:"config"`
}

// RunResponse is the body of a /run reply. Exactly one field is set:
// Result on success (HTTP 200), Error otherwise.
type RunResponse struct {
	Result *storm.Result `json:"result,omitempty"`
	Error  string        `json:"error,omitempty"`
}

// Info describes the evaluator a server exposes, so clients can verify
// they are tuning the topology the worker actually measures.
type Info struct {
	// Topology is the served topology's name.
	Topology string `json:"topology"`
	// Nodes is the topology's operator count; configurations must carry
	// exactly this many hints.
	Nodes int `json:"nodes"`
	// Metric is the throughput definition (storm.Metric.String());
	// empty means the server did not declare it.
	Metric string `json:"metric,omitempty"`
	// Fingerprint is the hex form of topo.Topology.Fingerprint — the
	// full structural hash. Name and node count cannot distinguish two
	// synthetic topologies generated with different seeds; this can.
	Fingerprint string `json:"fingerprint,omitempty"`
}
