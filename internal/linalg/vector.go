package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dot len %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: axpy len %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: sqdist len %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
