// Package linalg provides the dense linear algebra needed by the
// Gaussian-process stack: row-major matrices, Cholesky factorization
// with adaptive jitter, triangular solves, and incremental factor
// maintenance.
//
// The incremental operations are what make the BO hot path fast. A
// Cholesky factor can be Extended by one row/column (a new GP
// observation), Shrunk back (fantasy retraction), and rank-1
// Updated/Downdated (the random-Fourier-feature surrogate's normal
// equations) — each in O(n²) against the O(n³) of refactorizing.
// Extend records and reuses the jitter of the original factorization,
// so an incrementally grown factor agrees bit-for-bit with a batch
// factorization at the same jitter; the gp package's cache and its
// pinned parity tests depend on that contract.
//
// It is deliberately small: the GP code only ever needs symmetric
// positive-definite systems, so there is no general LU or QR here.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a matrix from a slice of rows. All rows must have
// equal length.
func NewMatrixFrom(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set stores v at (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

// Add adds v to the element at (i, j).
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("linalg: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Mul returns m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: mul dims %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		oi := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out
}

// MulVec returns m * x as a new vector.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("linalg: mulvec dims %dx%d * %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Symmetrize sets m to (m + m^T)/2 in place; m must be square.
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("linalg: symmetrize of non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := 0.5 * (m.Data[i*m.Cols+j] + m.Data[j*m.Cols+i])
			m.Data[i*m.Cols+j] = v
			m.Data[j*m.Cols+i] = v
		}
	}
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// m and b; useful in tests.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: MaxAbsDiff dim mismatch")
	}
	max := 0.0
	for i, v := range m.Data {
		d := math.Abs(v - b.Data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%10.4g", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
