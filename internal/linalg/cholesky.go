package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when Cholesky factorization fails
// even after the maximum jitter has been applied.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L with A = L Lᵀ, plus the
// jitter that had to be added to the diagonal to make A numerically
// positive definite.
//
// The factor supports four incremental operations used by the GP hot
// path (see the package comment): Extend appends one row/column,
// Shrink drops trailing rows/columns, and Update/Downdate apply
// symmetric rank-1 modifications A ± vvᵀ. All of them cost O(n²)
// against the O(n³) of a fresh factorization.
type Cholesky struct {
	L *Matrix
	// Jitter is the diagonal jitter the factorization actually used.
	// Extend adds the same jitter to the appended diagonal entry, so an
	// incrementally grown factor agrees bit-for-bit with a batch
	// factorization at that jitter (NewCholeskyWithJitter).
	Jitter float64
}

// NewCholesky factorizes the symmetric matrix a. If the plain
// factorization fails it retries with exponentially growing diagonal
// jitter starting at 1e-10 times the mean diagonal, up to maxTries
// doublings — the standard trick for GP kernel matrices that are
// positive semi-definite up to rounding.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	meanDiag := 0.0
	for i := 0; i < n; i++ {
		meanDiag += a.At(i, i)
	}
	if n > 0 {
		meanDiag /= float64(n)
	}
	if meanDiag <= 0 {
		meanDiag = 1
	}

	const maxTries = 12
	jitter := 0.0
	for try := 0; try <= maxTries; try++ {
		l, ok := tryCholesky(a, jitter)
		if ok {
			return &Cholesky{L: l, Jitter: jitter}, nil
		}
		if jitter == 0 {
			jitter = 1e-10 * meanDiag
		} else {
			jitter *= 10
		}
	}
	return nil, ErrNotPositiveDefinite
}

// NewCholeskyWithJitter factorizes a with exactly the given diagonal
// jitter — no escalation. It is the batch counterpart of Extend: a
// factor grown row by row from a smaller one at jitter j is
// bit-identical to NewCholeskyWithJitter of the full matrix at j.
func NewCholeskyWithJitter(a *Matrix, jitter float64) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	l, ok := tryCholesky(a, jitter)
	if !ok {
		return nil, ErrNotPositiveDefinite
	}
	return &Cholesky{L: l, Jitter: jitter}, nil
}

// Extend appends one row/column to the factored matrix: row holds the
// off-diagonal entries a(n, 0..n-1) of the new row and diag the new
// diagonal entry a(n, n), both of the raw matrix — the factor's
// recorded jitter is added to diag internally, keeping incremental and
// batch factorizations on the same effective matrix.
//
// The appended row is computed with the same operations in the same
// order as tryCholesky would use for the last row of a full
// factorization, so on success the result is bit-identical to
// refactorizing the whole (n+1)×(n+1) matrix at the same jitter, for
// O(n²) instead of O(n³). It fails with ErrNotPositiveDefinite when
// the extended matrix is not positive definite at the recorded jitter;
// the factor is left unchanged and the caller should refactorize in
// full (typically with jitter escalation).
func (c *Cholesky) Extend(row []float64, diag float64) error {
	n := c.L.Rows
	if len(row) != n {
		return fmt.Errorf("linalg: extend row len %d vs %d", len(row), n)
	}
	var y []float64
	if n > 0 {
		y = c.ForwardSolve(row)
	}
	d := diag + c.Jitter
	for _, v := range y {
		d -= v * v
	}
	if d <= 0 || math.IsNaN(d) {
		return ErrNotPositiveDefinite
	}
	m := n + 1
	l := NewMatrix(m, m)
	for i := 0; i < n; i++ {
		copy(l.Data[i*m:i*m+n], c.L.Data[i*n:(i+1)*n])
	}
	copy(l.Data[n*m:n*m+n], y)
	l.Data[n*m+n] = math.Sqrt(d)
	c.L = l
	return nil
}

// Shrink truncates the factor to its leading m×m block, undoing the
// most recent n−m Extend calls exactly: the retained entries are
// bit-identical to what they were before those appends. This is the
// constant-liar retraction path — fantasy points are always appended
// last, so dropping them is a trailing downdate.
func (c *Cholesky) Shrink(m int) error {
	n := c.L.Rows
	if m < 0 || m > n {
		return fmt.Errorf("linalg: shrink to %d rows from %d", m, n)
	}
	if m == n {
		return nil
	}
	l := NewMatrix(m, m)
	for i := 0; i < m; i++ {
		copy(l.Data[i*m:(i+1)*m], c.L.Data[i*n:i*n+m])
	}
	c.L = l
	return nil
}

// Update applies the symmetric rank-1 update A → A + vvᵀ to the
// factorization in place, in O(n²) (the LINPACK dchud scheme). v is
// not modified. An update of a positive-definite matrix cannot lose
// positive definiteness, so Update always succeeds.
func (c *Cholesky) Update(v []float64) {
	n := c.L.Rows
	if len(v) != n {
		panic(fmt.Sprintf("linalg: update vector len %d vs %d", len(v), n))
	}
	w := append([]float64(nil), v...)
	l := c.L.Data
	for k := 0; k < n; k++ {
		lkk := l[k*n+k]
		r := math.Hypot(lkk, w[k])
		cos := r / lkk
		sin := w[k] / lkk
		l[k*n+k] = r
		for i := k + 1; i < n; i++ {
			l[i*n+k] = (l[i*n+k] + sin*w[i]) / cos
			w[i] = cos*w[i] - sin*l[i*n+k]
		}
	}
}

// Downdate applies the symmetric rank-1 downdate A → A − vvᵀ in
// O(n²). It fails with ErrNotPositiveDefinite when the downdated
// matrix would not be positive definite; the factor is left unchanged
// in that case (the rotation runs against a scratch copy and only
// commits on success).
func (c *Cholesky) Downdate(v []float64) error {
	n := c.L.Rows
	if len(v) != n {
		return fmt.Errorf("linalg: downdate vector len %d vs %d", len(v), n)
	}
	w := append([]float64(nil), v...)
	l := append([]float64(nil), c.L.Data...)
	for k := 0; k < n; k++ {
		lkk := l[k*n+k]
		d := (lkk - w[k]) * (lkk + w[k])
		if d <= 0 || math.IsNaN(d) {
			return ErrNotPositiveDefinite
		}
		r := math.Sqrt(d)
		cos := r / lkk
		sin := w[k] / lkk
		l[k*n+k] = r
		for i := k + 1; i < n; i++ {
			l[i*n+k] = (l[i*n+k] - sin*w[i]) / cos
			w[i] = cos*w[i] - sin*l[i*n+k]
		}
	}
	copy(c.L.Data, l)
	return nil
}

func tryCholesky(a *Matrix, jitter float64) (*Matrix, bool) {
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j) + jitter
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, false
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			li := l.Data[i*n : i*n+j]
			lj := l.Data[j*n : j*n+j]
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			l.Set(i, j, s/ljj)
		}
	}
	return l, true
}

// SolveVec solves A x = b given the factorization, returning x.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	y := c.ForwardSolve(b)
	return c.BackSolve(y)
}

// ForwardSolve solves L y = b.
func (c *Cholesky) ForwardSolve(b []float64) []float64 {
	return c.ForwardSolveInto(make([]float64, c.L.Rows), b)
}

// ForwardSolveInto solves L y = b into dst (which must not alias b)
// and returns it. The allocation-free variant of ForwardSolve for
// per-candidate posterior variance in the acquisition scorer.
func (c *Cholesky) ForwardSolveInto(dst, b []float64) []float64 {
	n := c.L.Rows
	if len(b) != n || len(dst) != n {
		panic(fmt.Sprintf("linalg: forward solve len %d/%d vs %d", len(dst), len(b), n))
	}
	for i := 0; i < n; i++ {
		s := b[i]
		row := c.L.Data[i*n : i*n+i]
		for k, lik := range row {
			s -= lik * dst[k]
		}
		dst[i] = s / c.L.Data[i*n+i]
	}
	return dst
}

// BackSolve solves Lᵀ x = y.
func (c *Cholesky) BackSolve(y []float64) []float64 {
	return c.BackSolveInto(make([]float64, c.L.Rows), y)
}

// BackSolveInto solves Lᵀ x = y into dst (which must not alias y) and
// returns it.
func (c *Cholesky) BackSolveInto(dst, y []float64) []float64 {
	n := c.L.Rows
	if len(y) != n || len(dst) != n {
		panic(fmt.Sprintf("linalg: back solve len %d/%d vs %d", len(dst), len(y), n))
	}
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.Data[k*n+i] * dst[k]
		}
		dst[i] = s / c.L.Data[i*n+i]
	}
	return dst
}

// LogDet returns log|A| = 2 Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	n := c.L.Rows
	s := 0.0
	for i := 0; i < n; i++ {
		s += math.Log(c.L.Data[i*n+i])
	}
	return 2 * s
}

// SolveMatrix solves A X = B column by column.
func (c *Cholesky) SolveMatrix(b *Matrix) *Matrix {
	if b.Rows != c.L.Rows {
		panic("linalg: SolveMatrix dim mismatch")
	}
	out := NewMatrix(b.Rows, b.Cols)
	col := make([]float64, b.Rows)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < b.Rows; i++ {
			col[i] = b.At(i, j)
		}
		x := c.SolveVec(col)
		for i := 0; i < b.Rows; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out
}
