package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when Cholesky factorization fails
// even after the maximum jitter has been applied.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L with A = L Lᵀ, plus the
// jitter that had to be added to the diagonal to make A numerically
// positive definite.
type Cholesky struct {
	L      *Matrix
	Jitter float64
}

// NewCholesky factorizes the symmetric matrix a. If the plain
// factorization fails it retries with exponentially growing diagonal
// jitter starting at 1e-10 times the mean diagonal, up to maxTries
// doublings — the standard trick for GP kernel matrices that are
// positive semi-definite up to rounding.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	meanDiag := 0.0
	for i := 0; i < n; i++ {
		meanDiag += a.At(i, i)
	}
	if n > 0 {
		meanDiag /= float64(n)
	}
	if meanDiag <= 0 {
		meanDiag = 1
	}

	const maxTries = 12
	jitter := 0.0
	for try := 0; try <= maxTries; try++ {
		l, ok := tryCholesky(a, jitter)
		if ok {
			return &Cholesky{L: l, Jitter: jitter}, nil
		}
		if jitter == 0 {
			jitter = 1e-10 * meanDiag
		} else {
			jitter *= 10
		}
	}
	return nil, ErrNotPositiveDefinite
}

func tryCholesky(a *Matrix, jitter float64) (*Matrix, bool) {
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j) + jitter
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, false
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			li := l.Data[i*n : i*n+j]
			lj := l.Data[j*n : j*n+j]
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			l.Set(i, j, s/ljj)
		}
	}
	return l, true
}

// SolveVec solves A x = b given the factorization, returning x.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	y := c.ForwardSolve(b)
	return c.BackSolve(y)
}

// ForwardSolve solves L y = b.
func (c *Cholesky) ForwardSolve(b []float64) []float64 {
	n := c.L.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: forward solve len %d vs %d", len(b), n))
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := c.L.Data[i*n : i*n+i]
		for k, lik := range row {
			s -= lik * y[k]
		}
		y[i] = s / c.L.Data[i*n+i]
	}
	return y
}

// BackSolve solves Lᵀ x = y.
func (c *Cholesky) BackSolve(y []float64) []float64 {
	n := c.L.Rows
	if len(y) != n {
		panic(fmt.Sprintf("linalg: back solve len %d vs %d", len(y), n))
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.Data[k*n+i] * x[k]
		}
		x[i] = s / c.L.Data[i*n+i]
	}
	return x
}

// LogDet returns log|A| = 2 Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	n := c.L.Rows
	s := 0.0
	for i := 0; i < n; i++ {
		s += math.Log(c.L.Data[i*n+i])
	}
	return 2 * s
}

// SolveMatrix solves A X = B column by column.
func (c *Cholesky) SolveMatrix(b *Matrix) *Matrix {
	if b.Rows != c.L.Rows {
		panic("linalg: SolveMatrix dim mismatch")
	}
	out := NewMatrix(b.Rows, b.Cols)
	col := make([]float64, b.Rows)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < b.Rows; i++ {
			col[i] = b.At(i, j)
		}
		x := c.SolveVec(col)
		for i := 0; i < b.Rows; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out
}
