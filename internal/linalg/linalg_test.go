package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("dims = %dx%d, want 3x2", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v, want 6", m.At(2, 1))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Fatalf("Set failed")
	}
	m.Add(0, 0, 1)
	if m.At(0, 0) != 10 {
		t.Fatalf("Add failed")
	}
	tr := m.T()
	if tr.Rows != 2 || tr.Cols != 3 || tr.At(1, 2) != 6 {
		t.Fatalf("transpose wrong: %v", tr)
	}
}

func TestMatrixRowIsView(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	r[0] = 42
	if m.At(1, 0) != 42 {
		t.Fatalf("Row must be a view, got %v", m.At(1, 0))
	}
}

func TestMatrixCloneIndependent(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 1 {
		t.Fatalf("Clone aliases original")
	}
}

func TestMatrixMul(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFrom([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := NewMatrixFrom([][]float64{{19, 22}, {43, 50}})
	if c.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("mul = %v want %v", c, want)
	}
}

func TestMulVec(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := a.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("mulvec = %v", y)
	}
}

func TestSymmetrize(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {4, 1}})
	a.Symmetrize()
	if a.At(0, 1) != 3 || a.At(1, 0) != 3 {
		t.Fatalf("symmetrize = %v", a)
	}
}

func TestDotNormAXPY(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("dot = %v", Dot(a, b))
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatalf("norm = %v", Norm2([]float64{3, 4}))
	}
	y := CloneVec(b)
	AXPY(2, a, y)
	if y[0] != 6 || y[2] != 12 {
		t.Fatalf("axpy = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3 {
		t.Fatalf("scale = %v", y)
	}
	if SqDist(a, b) != 27 {
		t.Fatalf("sqdist = %v", SqDist(a, b))
	}
}

// randomSPD builds a random symmetric positive-definite matrix.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := b.Mul(b.T())
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n)) // ensure well conditioned
	}
	return a
}

func TestCholeskyReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 20, 50} {
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec := ch.L.Mul(ch.L.T())
		if rec.MaxAbsDiff(a) > 1e-8*float64(n) {
			t.Fatalf("n=%d: reconstruction error %g", n, rec.MaxAbsDiff(a))
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 3, 10, 40} {
		a := randomSPD(rng, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := ch.SolveVec(b)
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-7) {
				t.Fatalf("n=%d: x[%d]=%g want %g", n, i, x[i], xTrue[i])
			}
		}
	}
}

func TestCholeskyLogDet(t *testing.T) {
	// diag(4, 9) has det 36.
	a := NewMatrixFrom([][]float64{{4, 0}, {0, 9}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(ch.LogDet(), math.Log(36), 1e-12) {
		t.Fatalf("logdet = %v want %v", ch.LogDet(), math.Log(36))
	}
}

func TestCholeskyJitterOnSemiDefinite(t *testing.T) {
	// Rank-1 matrix: xxᵀ is PSD but singular; jitter must rescue it.
	x := []float64{1, 2, 3}
	a := NewMatrix(3, 3)
	for i := range x {
		for j := range x {
			a.Set(i, j, x[i]*x[j])
		}
	}
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("jitter failed to rescue PSD matrix: %v", err)
	}
	if ch.Jitter == 0 {
		t.Fatalf("expected nonzero jitter")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 0}, {0, -1e6}})
	if _, err := NewCholesky(a); err == nil {
		t.Fatalf("expected failure on strongly indefinite matrix")
	}
}

func TestCholeskySolveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(rng, 6)
	b := NewMatrix(6, 2)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := ch.SolveMatrix(b)
	if a.Mul(x).MaxAbsDiff(b) > 1e-8 {
		t.Fatalf("SolveMatrix residual too large")
	}
}

// Property: forward then back solve inverts L Lᵀ multiplication.
func TestQuickCholeskyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		a := randomSPD(r, n)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := a.MulVec(x)
		got := ch.SolveVec(b)
		for i := range got {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on dim mismatch")
		}
	}()
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	_ = a.Mul(b)
}
