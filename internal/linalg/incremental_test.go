package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randomSPDRidge builds a well-conditioned symmetric positive-definite
// matrix A = BᵀB + ridge·I.
func randomSPDRidge(rng *rand.Rand, n int, ridge float64) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b.At(k, i) * b.At(k, j)
			}
			a.Set(i, j, s)
			a.Set(j, i, s)
		}
		a.Add(i, i, ridge)
	}
	return a
}

// leading copies the leading m×m block of a.
func leading(a *Matrix, m int) *Matrix {
	out := NewMatrix(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			out.Set(i, j, a.At(i, j))
		}
	}
	return out
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestCholeskyExtendMatchesFull grows a factor row by row from a 1×1
// block and checks at every size that the result is bit-identical to a
// full factorization, and that solves agree to 1e-10.
func TestCholeskyExtendMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(12)
		a := randomSPDRidge(rng, n, 0.5)
		ch, err := NewCholesky(leading(a, 1))
		if err != nil {
			t.Fatalf("trial %d: 1x1 factor: %v", trial, err)
		}
		for m := 2; m <= n; m++ {
			row := make([]float64, m-1)
			for j := 0; j < m-1; j++ {
				row[j] = a.At(m-1, j)
			}
			if err := ch.Extend(row, a.At(m-1, m-1)); err != nil {
				t.Fatalf("trial %d: extend to %d: %v", trial, m, err)
			}
			full, err := NewCholesky(leading(a, m))
			if err != nil {
				t.Fatalf("trial %d: full factor %d: %v", trial, m, err)
			}
			if full.Jitter != ch.Jitter {
				t.Fatalf("trial %d size %d: jitter %g vs %g", trial, m, full.Jitter, ch.Jitter)
			}
			for i, v := range ch.L.Data {
				if v != full.L.Data[i] {
					t.Fatalf("trial %d size %d: factor entry %d differs: %g vs %g",
						trial, m, i, v, full.L.Data[i])
				}
			}
			b := make([]float64, m)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			if d := maxAbsDiff(ch.SolveVec(b), full.SolveVec(b)); d > 1e-10 {
				t.Fatalf("trial %d size %d: solve diff %g", trial, m, d)
			}
		}
	}
}

// TestCholeskyShrinkRestoresFactor extends a factor by several rows
// and shrinks back, requiring the original factor bit-for-bit — the
// constant-liar retraction contract.
func TestCholeskyShrinkRestoresFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, extra := 8, 3
	a := randomSPDRidge(rng, n+extra, 0.5)
	ch, err := NewCholesky(leading(a, n))
	if err != nil {
		t.Fatal(err)
	}
	orig := append([]float64(nil), ch.L.Data...)
	for m := n; m < n+extra; m++ {
		row := make([]float64, m)
		for j := range row {
			row[j] = a.At(m, j)
		}
		if err := ch.Extend(row, a.At(m, m)); err != nil {
			t.Fatalf("extend to %d: %v", m+1, err)
		}
	}
	if err := ch.Shrink(n); err != nil {
		t.Fatal(err)
	}
	if ch.L.Rows != n || ch.L.Cols != n {
		t.Fatalf("shrink left %dx%d", ch.L.Rows, ch.L.Cols)
	}
	for i, v := range ch.L.Data {
		if v != orig[i] {
			t.Fatalf("entry %d not restored: %g vs %g", i, v, orig[i])
		}
	}
	if err := ch.Shrink(n + 1); err == nil {
		t.Fatal("shrink above current size should fail")
	}
}

// TestCholeskyUpdateMatchesRefactor checks the rank-1 update against a
// fresh factorization of A + vvᵀ.
func TestCholeskyUpdateMatchesRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		a := randomSPDRidge(rng, n, 0.5)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		ch.Update(v)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Add(i, j, v[i]*v[j])
			}
		}
		full, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(ch.L.Data, full.L.Data); d > 1e-9 {
			t.Fatalf("trial %d: update factor diff %g", trial, d)
		}
	}
}

// TestCholeskyDowndateRestoresUpdate checks update-then-downdate is an
// identity to 1e-10, and that a failing downdate leaves the factor
// untouched.
func TestCholeskyDowndateRestoresUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		a := randomSPDRidge(rng, n, 0.5)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		orig := append([]float64(nil), ch.L.Data...)
		ch.Update(v)
		if err := ch.Downdate(v); err != nil {
			t.Fatalf("trial %d: downdate: %v", trial, err)
		}
		if d := maxAbsDiff(ch.L.Data, orig); d > 1e-10 {
			t.Fatalf("trial %d: round trip diff %g", trial, d)
		}

		// A downdate that would destroy positive definiteness must fail
		// and leave the factor unchanged.
		before := append([]float64(nil), ch.L.Data...)
		huge := make([]float64, n)
		for i := range huge {
			huge[i] = 1e6
		}
		if err := ch.Downdate(huge); err == nil {
			t.Fatalf("trial %d: non-PD downdate succeeded", trial)
		}
		if d := maxAbsDiff(ch.L.Data, before); d != 0 {
			t.Fatalf("trial %d: failed downdate mutated factor (diff %g)", trial, d)
		}
	}
}

// TestCholeskyExtendReusesJitter pins the jitter-consistency bugfix: a
// factor that needed diagonal jitter must apply the same jitter to
// appended rows, agreeing bit-for-bit with a batch factorization at
// that jitter.
func TestCholeskyExtendReusesJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	// Rank-deficient Gram matrix: 6 points in a 3-dimensional feature
	// space, so the plain factorization must escalate jitter.
	const n, rank = 6, 3
	b := NewMatrix(rank, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := 0.0
			for k := 0; k < rank; k++ {
				s += b.At(k, i) * b.At(k, j)
			}
			a.Set(i, j, s)
			a.Set(j, i, s)
		}
	}
	ch, err := NewCholesky(leading(a, n-1))
	if err != nil {
		t.Fatal(err)
	}
	if ch.Jitter == 0 {
		t.Fatal("test needs a matrix that forces jitter escalation")
	}
	row := make([]float64, n-1)
	for j := range row {
		row[j] = a.At(n-1, j)
	}
	if err := ch.Extend(row, a.At(n-1, n-1)); err != nil {
		t.Fatalf("extend at recorded jitter: %v", err)
	}
	full, err := NewCholeskyWithJitter(a, ch.Jitter)
	if err != nil {
		t.Fatalf("batch factorization at jitter %g: %v", ch.Jitter, err)
	}
	for i, v := range ch.L.Data {
		if v != full.L.Data[i] {
			t.Fatalf("entry %d: incremental %g vs batch %g", i, v, full.L.Data[i])
		}
	}
}
