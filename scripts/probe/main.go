// Command probe makes JSON assertions against dashboard documents in
// the CI smoke scripts (scripts/dash-smoke.sh, scripts/fleet-smoke.sh),
// so CI needs no runtime beyond the Go toolchain that builds the repo.
//
//	probe -mode state -file state.json [-topology PREFIX] [-min-retunes N]
//	probe -mode fleet -file fleet.json [-sessions N] [-slots N]
//	      [-all-progressing] [-require-done]
//
// state mode checks a single-session /api/state document: the expected
// fields are present; with -topology, info.topology has the given
// prefix; with -min-retunes, the retunes array records at least that
// many retune episodes (scripts/watch-smoke.sh uses this to assert a
// continuous-tuning run actually retuned).
//
// fleet mode checks an /api/fleet document: with -sessions, exactly
// that many sessions; with -slots, the advertised capacity equals it;
// always, the total and per-session in-flight counts never exceed the
// shared capacity (the fleet's core invariant); with -all-progressing,
// every session has at least one completed trial; with -require-done,
// the fleet and every session report done.
//
// Exit status 0 means every assertion held; 1 means one failed (the
// reason on stderr); 2 means bad usage or unreadable input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "probe: "+format+"\n", args...)
	os.Exit(1)
}

func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "probe: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	mode := flag.String("mode", "", "state or fleet")
	file := flag.String("file", "", "path to the JSON document (required)")
	topology := flag.String("topology", "", "state: require info.topology to have this prefix")
	minRetunes := flag.Int("min-retunes", 0, "state: require at least this many retune episodes")
	sessions := flag.Int("sessions", 0, "fleet: require exactly this many sessions")
	slots := flag.Int("slots", 0, "fleet: require the advertised slot capacity to equal this")
	allProgressing := flag.Bool("all-progressing", false, "fleet: require every session to have completed ≥ 1 trial")
	requireDone := flag.Bool("require-done", false, "fleet: require the fleet and every session to be done")
	flag.Parse()

	if *file == "" {
		usage("-file is required")
	}
	raw, err := os.ReadFile(*file)
	if err != nil {
		usage("%v", err)
	}

	switch *mode {
	case "state":
		probeState(raw, *topology, *minRetunes)
	case "fleet":
		probeFleet(raw, *sessions, *slots, *allProgressing, *requireDone)
	default:
		usage("unknown -mode %q (want state or fleet)", *mode)
	}
}

// probeState checks a single-session /api/state document.
func probeState(raw []byte, topology string, minRetunes int) {
	var st map[string]json.RawMessage
	if err := json.Unmarshal(raw, &st); err != nil {
		fail("/api/state is not a JSON object: %v", err)
	}
	for _, key := range []string{"title", "trials", "incumbent", "events", "elapsedMs"} {
		if _, ok := st[key]; !ok {
			keys := make([]string, 0, len(st))
			for k := range st {
				keys = append(keys, k)
			}
			// Sorted so the failure message is stable across runs
			// (stormlint: maporder).
			sort.Strings(keys)
			fail("/api/state missing %q (has: %s)", key, strings.Join(keys, ", "))
		}
	}
	var trials []json.RawMessage
	if err := json.Unmarshal(st["trials"], &trials); err != nil {
		fail("/api/state trials is not an array: %v", err)
	}
	var events int64
	if err := json.Unmarshal(st["events"], &events); err != nil {
		fail("/api/state events is not a number: %v", err)
	}
	if topology != "" {
		var info struct {
			Topology string `json:"topology"`
		}
		if err := json.Unmarshal(st["info"], &info); err != nil {
			fail("/api/state info: %v", err)
		}
		if !strings.HasPrefix(info.Topology, topology) {
			fail("info.topology = %q, want prefix %q", info.Topology, topology)
		}
	}
	retunes := 0
	if raw, ok := st["retunes"]; ok {
		var eps []json.RawMessage
		if err := json.Unmarshal(raw, &eps); err != nil {
			fail("/api/state retunes is not an array: %v", err)
		}
		retunes = len(eps)
	}
	if retunes < minRetunes {
		fail("/api/state records %d retune episodes, want >= %d", retunes, minRetunes)
	}
	fmt.Printf("api/state: ok (%d trials seen, %d events, %d retunes)\n", len(trials), events, retunes)
}

// fleetDoc mirrors the /api/fleet document shape
// (internal/dash.FleetState) without importing it: the probe asserts
// the wire format a dashboard consumer actually sees.
type fleetDoc struct {
	Title    string `json:"title"`
	Slots    int    `json:"slots"`
	InFlight int    `json:"inFlight"`
	Done     bool   `json:"done"`
	Sessions []struct {
		Name      string `json:"name"`
		InFlight  int    `json:"inFlight"`
		Done      bool   `json:"done"`
		Trials    int    `json:"trials"`
		Completed int    `json:"completed"`
		StateURL  string `json:"stateUrl"`
		EventsURL string `json:"eventsUrl"`
	} `json:"sessions"`
}

// probeFleet checks an /api/fleet document.
func probeFleet(raw []byte, sessions, slots int, allProgressing, requireDone bool) {
	var fd fleetDoc
	if err := json.Unmarshal(raw, &fd); err != nil {
		fail("/api/fleet did not parse: %v", err)
	}
	if fd.Slots < 1 {
		fail("/api/fleet advertises %d slots", fd.Slots)
	}
	if slots > 0 && fd.Slots != slots {
		fail("/api/fleet advertises %d slots, want %d", fd.Slots, slots)
	}
	if sessions > 0 && len(fd.Sessions) != sessions {
		fail("/api/fleet has %d sessions, want %d", len(fd.Sessions), sessions)
	}
	// The core invariant: in-flight trials never exceed the shared
	// capacity, and the per-session counts sum to the fleet's.
	if fd.InFlight > fd.Slots {
		fail("%d trials in flight over %d slots: shared capacity exceeded", fd.InFlight, fd.Slots)
	}
	sum := 0
	for _, s := range fd.Sessions {
		if s.InFlight < 0 {
			fail("session %q reports negative in-flight %d", s.Name, s.InFlight)
		}
		sum += s.InFlight
	}
	if sum != fd.InFlight {
		fail("per-session in-flight sums to %d, fleet reports %d", sum, fd.InFlight)
	}
	if allProgressing {
		for _, s := range fd.Sessions {
			if s.Completed < 1 {
				fail("session %q has no completed trials yet", s.Name)
			}
		}
	}
	if requireDone {
		if !fd.Done {
			fail("fleet not done")
		}
		for _, s := range fd.Sessions {
			if !s.Done {
				fail("session %q not done", s.Name)
			}
		}
	}
	var parts []string
	for _, s := range fd.Sessions {
		parts = append(parts, fmt.Sprintf("%s %d/%d", s.Name, s.Completed, s.Trials))
	}
	fmt.Printf("api/fleet: ok (%d/%d slots in use; %s)\n", fd.InFlight, fd.Slots, strings.Join(parts, ", "))
}
