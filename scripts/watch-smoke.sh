#!/usr/bin/env bash
# Watch smoke test: run a real `stormtune watch` under a flash-crowd
# drift with the live dashboard attached, then assert the continuous
# tuning loop actually closed — the flash must trip the degradation
# monitor and the retune episode must be visible both in /api/state
# (retunes array, via probe -min-retunes) and on the SSE stream
# (retune_triggered event). CI runs this on every PR; `make
# watch-smoke` runs it locally.
set -euo pipefail

DASH_ADDR="${WATCH_DASH_ADDR:-127.0.0.1:8092}"
WORKDIR="$(mktemp -d)"
PIDS=()
cleanup() {
  # The trap owns cleanup so a failing assertion can never leak the
  # watch process or the SSE tail, and the step's verdict comes from
  # the assertions, never from kill.
  for pid in "${PIDS[@]:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

go build -o "$WORKDIR/stormtune" ./cmd/stormtune
go build -o "$WORKDIR/probe" ./scripts/probe

# A 3x flash over an offered load near the tuned capacity guarantees
# sustained backpressure, so the monitor must trigger. The horizon is
# effectively unbounded and -throttle paces the simulated timeline in
# wall-clock, keeping the process (and its dashboard) alive while the
# probes run; the trap shuts it down once the assertions pass.
"$WORKDIR/stormtune" watch -topology small -seed 1 -steps 10 -retune-steps 8 \
  -drift 'flash:at=1500,mag=3' -base-load 400 -episodes 2 -horizon 600000 \
  -throttle 200ms -snapshot "$WORKDIR/watch.json" -snapshot-every 5 \
  -dash "$DASH_ADDR" -quiet >"$WORKDIR/watch.log" 2>&1 &
WATCH_PID=$!
PIDS+=("$WATCH_PID")

for i in $(seq 1 100); do
  curl -fs "http://$DASH_ADDR/healthz" >/dev/null 2>&1 && break
  if ! kill -0 "$WATCH_PID" 2>/dev/null; then
    echo "watch process died before the dashboard came up:" >&2
    cat "$WORKDIR/watch.log" >&2
    exit 1
  fi
  sleep 0.2
done
curl -fs "http://$DASH_ADDR/healthz" >/dev/null
echo "healthz: ok"

# Follow the SSE stream from the beginning so the retune event cannot
# race past us while we poll the state document below.
curl -fsN --max-time 300 "http://$DASH_ADDR/api/events?after=0" \
  >"$WORKDIR/sse.log" 2>/dev/null &
PIDS+=($!)

# Poll /api/state until the flash has hit and a retune episode is
# recorded. ~25 pre-flash hold samples at 200ms each put the trigger
# well inside this window.
RETUNED=0
for i in $(seq 1 300); do
  if ! kill -0 "$WATCH_PID" 2>/dev/null; then
    echo "watch exited before a retune episode was observed:" >&2
    cat "$WORKDIR/watch.log" >&2
    exit 1
  fi
  curl -fs "http://$DASH_ADDR/api/state" >"$WORKDIR/state.json"
  if "$WORKDIR/probe" -mode state -file "$WORKDIR/state.json" \
       -topology small -min-retunes 1 2>/dev/null; then
    RETUNED=1
    break
  fi
  sleep 0.2
done
if [[ "$RETUNED" != 1 ]]; then
  echo "no retune episode appeared in /api/state:" >&2
  cat "$WORKDIR/state.json" >&2
  exit 1
fi

# The same episode must be on the event stream.
SSE_OK=0
for i in $(seq 1 50); do
  if grep -q '^event: retune_triggered' "$WORKDIR/sse.log"; then
    SSE_OK=1
    break
  fi
  sleep 0.2
done
if [[ "$SSE_OK" != 1 ]]; then
  echo "SSE stream delivered no retune_triggered event:" >&2
  head -50 "$WORKDIR/sse.log" >&2
  exit 1
fi
echo "sse: ok ($(grep -c '^event: retune_triggered' "$WORKDIR/sse.log") retune_triggered events)"

# The periodic snapshot must exist and parse as a watch state a future
# `stormtune watch -resume` could load.
if [[ ! -s "$WORKDIR/watch.json" ]]; then
  echo "no periodic snapshot was written" >&2
  exit 1
fi
grep -q '"watch"' "$WORKDIR/watch.json" || {
  echo "snapshot does not look like a watch state:" >&2
  head -5 "$WORKDIR/watch.json" >&2
  exit 1
}
echo "snapshot: ok"

# The watch's own log must narrate the episode.
grep -q "retune episode 1 triggered" "$WORKDIR/watch.log" || {
  echo "watch log has no retune trigger line:" >&2
  cat "$WORKDIR/watch.log" >&2
  exit 1
}
echo "watch smoke test: PASS"
