#!/usr/bin/env bash
# Multi-tenant serving-plane smoke test: one authed `stormtune serve`
# worker serving two topologies, a heterogeneous two-session fleet
# tuning both over it, auth actually enforced on the wire, a kill -9
# mid-run, and a `-resume` that must finish with a summary table
# bit-identical to an uninterrupted reference run. CI runs this on
# every PR; `make serve-multi-smoke` runs it locally.
set -euo pipefail

W_ADDR="${SERVE_MULTI_ADDR:-127.0.0.1:8079}"
TOKEN="smoke-secret"
WORKDIR="$(mktemp -d)"
PIDS=()
cleanup() {
  # The trap owns cleanup so a failing assertion can never leak the
  # worker or fleet processes, and the step's verdict comes from the
  # assertions, never from kill.
  for pid in "${PIDS[@]:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

go build -o "$WORKDIR/stormtune" ./cmd/stormtune

# One worker, two registered topologies, bearer auth, bounded admission.
"$WORKDIR/stormtune" serve -addr "$W_ADDR" -topology small,medium -seed 1 \
  -token "$TOKEN" -capacity 2 -quiet >"$WORKDIR/worker.log" 2>&1 &
PIDS+=($!)
for i in $(seq 1 50); do
  curl -fs "http://$W_ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fs "http://$W_ADDR/healthz" >/dev/null
echo "worker: up"

# Auth is enforced: no token and a wrong token are 401, the right one
# is 200 — /healthz stays open for probes.
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$W_ADDR/info")
[[ "$code" == 401 ]] || { echo "unauthenticated /info got $code, want 401" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -H "Authorization: Bearer nope" "http://$W_ADDR/info")
[[ "$code" == 401 ]] || { echo "wrong-token /info got $code, want 401" >&2; exit 1; }
curl -fs -H "Authorization: Bearer $TOKEN" "http://$W_ADDR/info" >"$WORKDIR/info.json"
grep -q '"topology":"small' "$WORKDIR/info.json" && grep -q '"topology":"medium' "$WORKDIR/info.json" || {
  echo "/info does not list both topologies:" >&2
  cat "$WORKDIR/info.json" >&2
  exit 1
}
echo "auth + multi-topology /info: ok"

# A heterogeneous fleet: two sessions tuning different topologies over
# the same worker, routed by fingerprint.
cat >"$WORKDIR/fleet.json" <<EOF
{
  "title": "serve-multi smoke",
  "workers": ["http://$W_ADDR"],
  "token": "$TOKEN",
  "slots": 2,
  "sessions": [
    {"name": "small-bo",  "topology": "small",  "strategy": "bo", "steps": 120, "seed": 1},
    {"name": "medium-bo", "topology": "medium", "strategy": "bo", "steps": 100, "seed": 2}
  ]
}
EOF

# Reference: the same logged fleet, uninterrupted. -state pins the
# sequential per-member dispatch the crash-safe path uses, so the two
# runs are comparable trial for trial.
"$WORKDIR/stormtune" fleet -manifest "$WORKDIR/fleet.json" \
  -state "$WORKDIR/ref.log" -quiet >"$WORKDIR/ref.out" 2>&1 || {
  echo "reference fleet run failed:" >&2
  cat "$WORKDIR/ref.out" >&2
  exit 1
}
grep -q "fleet best:" "$WORKDIR/ref.out" || {
  echo "reference run reported no result:" >&2
  cat "$WORKDIR/ref.out" >&2
  exit 1
}
echo "reference run: done"

# Crash run: same manifest, fresh log, SIGKILL once both members have
# durable progress (a snapshot covering at least one recorded event).
"$WORKDIR/stormtune" fleet -manifest "$WORKDIR/fleet.json" \
  -state "$WORKDIR/crash.log" -quiet >"$WORKDIR/crash.out" 2>&1 &
FLEET_PID=$!
PIDS+=("$FLEET_PID")
KILLED=0
for i in $(seq 1 300); do
  if ! kill -0 "$FLEET_PID" 2>/dev/null; then
    break
  fi
  small_snaps=$(grep -c '"kind":"snapshot","member":"small-bo","seq":[1-9]' "$WORKDIR/crash.log" 2>/dev/null || true)
  medium_snaps=$(grep -c '"kind":"snapshot","member":"medium-bo","seq":[1-9]' "$WORKDIR/crash.log" 2>/dev/null || true)
  if [[ "${small_snaps:-0}" -ge 3 && "${medium_snaps:-0}" -ge 3 ]]; then
    kill -9 "$FLEET_PID"
    wait "$FLEET_PID" 2>/dev/null || true
    KILLED=1
    break
  fi
  sleep 0.1
done
if [[ "$KILLED" != 1 ]]; then
  echo "fleet finished before it could be killed mid-run; raise the budgets" >&2
  cat "$WORKDIR/crash.out" >&2
  exit 1
fi
echo "fleet: killed mid-run"

# Resume from the recovered log; it must pick up both members and
# finish with the reference's exact summary — same steps, same best
# step, same incumbent throughput per session.
"$WORKDIR/stormtune" fleet -manifest "$WORKDIR/fleet.json" \
  -state "$WORKDIR/crash.log" -resume -quiet >"$WORKDIR/resume.out" 2>&1 || {
  echo "resumed fleet run failed:" >&2
  cat "$WORKDIR/resume.out" >&2
  exit 1
}
grep -q "resuming 2 of 2 session(s)" "$WORKDIR/resume.out" || {
  echo "resume did not restore both members:" >&2
  cat "$WORKDIR/resume.out" >&2
  exit 1
}
sed -n '/^session /,/^fleet best:/p' "$WORKDIR/ref.out" >"$WORKDIR/ref.summary"
sed -n '/^session /,/^fleet best:/p' "$WORKDIR/resume.out" >"$WORKDIR/resume.summary"
# Strip the wall-clock suffix off the fleet-best line before diffing.
sed -i 's/ after .*$//' "$WORKDIR/ref.summary" "$WORKDIR/resume.summary"
if ! diff -u "$WORKDIR/ref.summary" "$WORKDIR/resume.summary"; then
  echo "resumed run's summary diverges from the uninterrupted reference" >&2
  exit 1
fi
echo "resume: bit-identical summary"
echo "serve-multi smoke test: PASS"
