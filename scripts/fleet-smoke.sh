#!/usr/bin/env bash
# Fleet smoke test: start two real `stormtune serve` workers, run a
# real 3-session `stormtune fleet` over them with the aggregated
# dashboard, probe /api/fleet mid-run (all sessions progressing, shared
# capacity never exceeded) and one session's SSE stream, then let the
# run finish and check the final state. CI runs this on every PR;
# `make fleet-smoke` runs it locally.
set -euo pipefail

DASH_ADDR="${FLEET_DASH_ADDR:-127.0.0.1:8091}"
W1_ADDR="${FLEET_W1_ADDR:-127.0.0.1:8077}"
W2_ADDR="${FLEET_W2_ADDR:-127.0.0.1:8078}"
WORKDIR="$(mktemp -d)"
PIDS=()
cleanup() {
  # The trap owns cleanup so a failing assertion can never leak the
  # worker or fleet processes, and the step's verdict comes from the
  # assertions, never from kill.
  for pid in "${PIDS[@]:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

go build -o "$WORKDIR/stormtune" ./cmd/stormtune
go build -o "$WORKDIR/probe" ./scripts/probe

# Two shared workers. One is flaky so the fleet's retry path sees real
# lost measurements.
"$WORKDIR/stormtune" serve -addr "$W1_ADDR" -topology small -seed 1 -quiet \
  >"$WORKDIR/w1.log" 2>&1 &
PIDS+=($!)
"$WORKDIR/stormtune" serve -addr "$W2_ADDR" -topology small -seed 1 -flaky 9 -quiet \
  >"$WORKDIR/w2.log" 2>&1 &
PIDS+=($!)
for addr in "$W1_ADDR" "$W2_ADDR"; do
  for i in $(seq 1 50); do
    curl -fs "http://$addr/healthz" >/dev/null 2>&1 && break
    sleep 0.2
  done
  curl -fs "http://$addr/healthz" >/dev/null
done
echo "workers: up"

# Three sessions, different budgets/seeds/strategies/weights, all over
# the 2-worker pool. Budgets sized so the run outlasts the probes.
cat >"$WORKDIR/fleet.json" <<EOF
{
  "title": "fleet smoke",
  "workers": ["http://$W1_ADDR", "http://$W2_ADDR"],
  "slots": 2,
  "sessions": [
    {"name": "bo-a",  "topology": "small", "strategy": "bo",  "steps": 40, "seed": 1, "weight": 1},
    {"name": "bo-b",  "topology": "small", "strategy": "bo",  "steps": 35, "seed": 2, "weight": 2},
    {"name": "ibo-c", "topology": "small", "strategy": "ibo", "steps": 30, "seed": 3, "weight": 1}
  ]
}
EOF

"$WORKDIR/stormtune" fleet -manifest "$WORKDIR/fleet.json" -dash "$DASH_ADDR" -quiet \
  >"$WORKDIR/fleet.log" 2>&1 &
FLEET_PID=$!
PIDS+=("$FLEET_PID")

for i in $(seq 1 100); do
  curl -fs "http://$DASH_ADDR/healthz" >/dev/null 2>&1 && break
  if ! kill -0 "$FLEET_PID" 2>/dev/null; then
    echo "fleet process died before the dashboard came up:" >&2
    cat "$WORKDIR/fleet.log" >&2
    exit 1
  fi
  sleep 0.2
done
curl -fs "http://$DASH_ADDR/healthz" >/dev/null
echo "healthz: ok"

# Mid-run: poll until every session has completed at least one trial
# (all sessions progressing), asserting on every sample that the
# in-flight total never exceeds the 2 shared slots.
PROGRESSED=0
for i in $(seq 1 150); do
  if ! kill -0 "$FLEET_PID" 2>/dev/null; then
    echo "fleet finished before all sessions were observed progressing" >&2
    cat "$WORKDIR/fleet.log" >&2
    exit 1
  fi
  curl -fs "http://$DASH_ADDR/api/fleet" >"$WORKDIR/fleet-state.json"
  "$WORKDIR/probe" -mode fleet -file "$WORKDIR/fleet-state.json" -sessions 3 -slots 2 >/dev/null
  if "$WORKDIR/probe" -mode fleet -file "$WORKDIR/fleet-state.json" \
       -sessions 3 -slots 2 -all-progressing 2>/dev/null; then
    PROGRESSED=1
    break
  fi
  sleep 0.2
done
if [[ "$PROGRESSED" != 1 ]]; then
  echo "not every session progressed while the fleet was running:" >&2
  cat "$WORKDIR/fleet-state.json" >&2
  exit 1
fi

# Per-session drill-down: the state JSON has the single-session shape,
# and the SSE stream replays from seq 1 and follows until the session's
# terminal done event (the server hangs up on its own).
curl -fs "http://$DASH_ADDR/sessions/bo-a/api/state" >"$WORKDIR/session.json"
"$WORKDIR/probe" -mode state -file "$WORKDIR/session.json" -topology small
curl -fsN --max-time 600 "http://$DASH_ADDR/sessions/bo-a/api/events?after=0" >"$WORKDIR/sse.log"
grep -q '^event: trial_completed' "$WORKDIR/sse.log" || {
  echo "session SSE stream delivered no trial_completed event:" >&2
  head -50 "$WORKDIR/sse.log" >&2
  exit 1
}
grep -q '^event: done' "$WORKDIR/sse.log" || {
  echo "session SSE stream did not terminate with a done event" >&2
  exit 1
}
echo "sse: ok ($(grep -c '^event: trial_completed' "$WORKDIR/sse.log") trial_completed events on bo-a)"

# Let the fleet finish (it shuts the dashboard down itself) and check
# the process's own summary.
FLEET_STATUS=0
wait "$FLEET_PID" || FLEET_STATUS=$?
if [[ "$FLEET_STATUS" != 0 ]]; then
  echo "fleet run exited with status $FLEET_STATUS:" >&2
  cat "$WORKDIR/fleet.log" >&2
  exit 1
fi
grep -q "fleet best:" "$WORKDIR/fleet.log" || {
  echo "fleet run did not report a result:" >&2
  cat "$WORKDIR/fleet.log" >&2
  exit 1
}
echo "fleet smoke test: PASS"
