#!/usr/bin/env bash
# Dashboard smoke test: start a real `stormtune tune -dash` run, probe
# /healthz and /api/state from a second process, and consume the SSE
# stream, asserting a trial_completed event arrives before the run
# ends. CI runs this on every PR; `make dash-smoke` runs it locally.
set -euo pipefail

ADDR="${DASH_ADDR:-127.0.0.1:8090}"
WORKDIR="$(mktemp -d)"
TUNE_PID=""
cleanup() {
  # The trap owns cleanup so a failing assertion can never leak the
  # background tuning process.
  if [[ -n "$TUNE_PID" ]] && kill -0 "$TUNE_PID" 2>/dev/null; then
    kill "$TUNE_PID" 2>/dev/null || true
    wait "$TUNE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

go build -o "$WORKDIR/stormtune" ./cmd/stormtune
# The JSON assertions run through the probe helper (shared with
# fleet-smoke.sh) so CI needs no runtime beyond the Go toolchain.
go build -o "$WORKDIR/probe" ./scripts/probe

# 120 steps keeps the GP big enough that the run lasts long past the
# probes below (~10s locally); the SSE replay cursor means a late
# subscriber still sees every event from seq 1.
"$WORKDIR/stormtune" tune -topology small -steps 120 -dash "$ADDR" -quiet \
  >"$WORKDIR/tune.log" 2>&1 &
TUNE_PID=$!

for i in $(seq 1 100); do
  curl -fs "http://$ADDR/healthz" >/dev/null 2>&1 && break
  if ! kill -0 "$TUNE_PID" 2>/dev/null; then
    echo "tune process died before the dashboard came up:" >&2
    cat "$WORKDIR/tune.log" >&2
    exit 1
  fi
  sleep 0.2
done
curl -fs "http://$ADDR/healthz" >/dev/null
echo "healthz: ok"

# The state snapshot is valid JSON with the expected fields.
curl -fs "http://$ADDR/api/state" >"$WORKDIR/state.json"
"$WORKDIR/probe" -mode state -file "$WORKDIR/state.json" -topology small

# Follow the SSE stream from the beginning; the server hangs up on its
# own once the run completes ("done" event), so curl terminates with
# the session. Assert a trial completed while the stream was live.
curl -fsN --max-time 600 "http://$ADDR/api/events?after=0" >"$WORKDIR/sse.log"
grep -q '^event: trial_completed' "$WORKDIR/sse.log" || {
  echo "SSE stream delivered no trial_completed event:" >&2
  head -50 "$WORKDIR/sse.log" >&2
  exit 1
}
grep -q '^event: done' "$WORKDIR/sse.log" || {
  echo "SSE stream did not terminate with a done event" >&2
  exit 1
}
echo "sse: ok ($(grep -c '^event: trial_completed' "$WORKDIR/sse.log") trial_completed events)"

wait "$TUNE_PID"
TUNE_PID=""
grep -q "throughput:" "$WORKDIR/tune.log" || {
  echo "tune run did not report a result:" >&2
  cat "$WORKDIR/tune.log" >&2
  exit 1
}
echo "dashboard smoke test: PASS"
