#!/usr/bin/env bash
# Archive smoke test: close the warm-start loop end to end with the
# real CLI. A cold `stormtune tune -archive` run records and seals its
# evidence; `stormtune archive list` shows it; a second run over the
# same archive warm-starts from the first (stdout narrates the donor,
# and /api/state reports warmStarted + the donor key while the run is
# live); `archive gc` then drops the killed second run's unsealed
# record. CI runs this on every PR; `make archive-smoke` runs it
# locally.
set -euo pipefail

ADDR="${ARCHIVE_DASH_ADDR:-127.0.0.1:8093}"
WORKDIR="$(mktemp -d)"
ARCH="$WORKDIR/archive"
TUNE_PID=""
cleanup() {
  # The trap owns cleanup so a failing assertion can never leak the
  # background tuning process.
  if [[ -n "$TUNE_PID" ]] && kill -0 "$TUNE_PID" 2>/dev/null; then
    kill "$TUNE_PID" 2>/dev/null || true
    wait "$TUNE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

go build -o "$WORKDIR/stormtune" ./cmd/stormtune

# Cold run: nothing archived yet, so no donor exists; the run must say
# so, finish, and seal its record.
"$WORKDIR/stormtune" tune -topology small -seed 1 -steps 10 \
  -archive "$ARCH" -quiet >"$WORKDIR/cold.log" 2>&1
grep -q "cold start" "$WORKDIR/cold.log" || {
  echo "first run over an empty archive did not report a cold start:" >&2
  cat "$WORKDIR/cold.log" >&2
  exit 1
}
echo "cold run: ok"

# The archive lists the sealed session.
"$WORKDIR/stormtune" archive list -archive "$ARCH" >"$WORKDIR/list1.log"
grep -q "bo" "$WORKDIR/list1.log" && grep -q "true" "$WORKDIR/list1.log" || {
  echo "archive list does not show the sealed cold run:" >&2
  cat "$WORKDIR/list1.log" >&2
  exit 1
}
COLD_KEY="$(awk 'NR==2{print $1}' "$WORKDIR/list1.log")"
echo "archive list: ok ($COLD_KEY)"

# show by the fingerprint embedded in the key (…-<16 hex>/…).
FP="$(sed -n 's|.*-\([0-9a-f]\{16\}\)/.*|\1|p' <<<"$COLD_KEY")"
"$WORKDIR/stormtune" archive show "$FP" -archive "$ARCH" >"$WORKDIR/show.log"
grep -q "trials:    10" "$WORKDIR/show.log" || {
  echo "archive show did not detail the 10 archived trials:" >&2
  cat "$WORKDIR/show.log" >&2
  exit 1
}
echo "archive show: ok"

# Warm run: same topology and archive, long enough (120 steps) to stay
# alive while we probe its dashboard. It must announce the donor on
# stdout immediately.
"$WORKDIR/stormtune" tune -topology small -seed 2 -steps 120 \
  -archive "$ARCH" -dash "$ADDR" -quiet >"$WORKDIR/warm.log" 2>&1 &
TUNE_PID=$!

for i in $(seq 1 100); do
  curl -fs "http://$ADDR/healthz" >/dev/null 2>&1 && break
  if ! kill -0 "$TUNE_PID" 2>/dev/null; then
    echo "warm run died before the dashboard came up:" >&2
    cat "$WORKDIR/warm.log" >&2
    exit 1
  fi
  sleep 0.2
done
grep -q "warm start: donor" "$WORKDIR/warm.log" || {
  echo "re-tune over the archived evidence did not warm-start:" >&2
  cat "$WORKDIR/warm.log" >&2
  exit 1
}
echo "warm start: ok"

# The dashboard state carries the transfer: warmStarted plus the donor
# key the run seeded from.
curl -fs "http://$ADDR/api/state" >"$WORKDIR/state.json"
grep -q '"warmStarted": *true' "$WORKDIR/state.json" || {
  echo "/api/state does not report warmStarted:" >&2
  head -c 2000 "$WORKDIR/state.json" >&2
  exit 1
}
grep -qF '"warmDonor": "'"$COLD_KEY"'"' "$WORKDIR/state.json" || {
  echo "/api/state does not name the donor $COLD_KEY:" >&2
  head -c 2000 "$WORKDIR/state.json" >&2
  exit 1
}
echo "api/state warmStarted: ok"

# Kill the warm run mid-flight: its record stays unsealed (evidence of
# an abandoned run), which is exactly what gc prunes.
kill "$TUNE_PID" 2>/dev/null || true
wait "$TUNE_PID" 2>/dev/null || true
TUNE_PID=""

"$WORKDIR/stormtune" archive list -archive "$ARCH" >"$WORKDIR/list2.log"
SESSIONS=$(($(wc -l <"$WORKDIR/list2.log") - 1))
if [[ "$SESSIONS" -ne 2 ]]; then
  echo "expected 2 archived sessions after the warm run, got $SESSIONS:" >&2
  cat "$WORKDIR/list2.log" >&2
  exit 1
fi
"$WORKDIR/stormtune" archive gc -archive "$ARCH" >"$WORKDIR/gc.log"
grep -q "1 record(s) dropped" "$WORKDIR/gc.log" || {
  echo "gc did not drop the killed run's unsealed record:" >&2
  cat "$WORKDIR/gc.log" >&2
  cat "$WORKDIR/list2.log" >&2
  exit 1
}
echo "archive gc: ok"

# Export/import round trip into a fresh archive.
"$WORKDIR/stormtune" archive export -archive "$ARCH" -o "$WORKDIR/export.jsonl"
"$WORKDIR/stormtune" archive import -archive "$WORKDIR/arch2" -i "$WORKDIR/export.jsonl" \
  | grep -q "imported 1 session(s)" || {
  echo "export/import round trip failed" >&2
  exit 1
}
echo "archive export/import: ok"
echo "archive smoke test: PASS"
